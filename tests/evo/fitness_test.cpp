#include "evo/fitness.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ecad::evo {
namespace {

EvalResult sample_result() {
  EvalResult result;
  result.accuracy = 0.9;
  result.outputs_per_second = 1e6;
  result.latency_seconds = 1e-4;
  result.hw_efficiency = 0.4;
  result.effective_gflops = 300.0;
  result.power_watts = 27.0;
  result.parameters = 5000.0;
  return result;
}

TEST(Metric, NamesRoundTrip) {
  for (Metric metric : {Metric::Accuracy, Metric::Throughput, Metric::Latency,
                        Metric::Efficiency, Metric::EffectiveGflops, Metric::Power,
                        Metric::Parameters}) {
    EXPECT_EQ(metric_from_name(to_string(metric)), metric);
  }
  EXPECT_THROW(metric_from_name("speedup"), std::invalid_argument);
}

TEST(Metric, ValueExtraction) {
  const EvalResult result = sample_result();
  EXPECT_DOUBLE_EQ(metric_value(result, Metric::Accuracy), 0.9);
  EXPECT_DOUBLE_EQ(metric_value(result, Metric::Throughput), 1e6);
  EXPECT_DOUBLE_EQ(metric_value(result, Metric::Power), 27.0);
  EXPECT_DOUBLE_EQ(metric_value(result, Metric::Parameters), 5000.0);
}

TEST(Scalarize, SingleObjective) {
  EXPECT_DOUBLE_EQ(scalarize(sample_result(), {{Metric::Accuracy, 1.0, true, false}}), 0.9);
}

TEST(Scalarize, MinimizeNegates) {
  EXPECT_DOUBLE_EQ(scalarize(sample_result(), {{Metric::Power, 1.0, false, false}}), -27.0);
}

TEST(Scalarize, LogScaleCompresses) {
  const double value = scalarize(sample_result(), {{Metric::Throughput, 1.0, true, true}});
  EXPECT_NEAR(value, 6.0, 1e-9);
}

TEST(Scalarize, WeightsCombine) {
  const double value = scalarize(sample_result(), {{Metric::Accuracy, 1.0, true, false},
                                                   {Metric::Throughput, 0.05, true, true}});
  EXPECT_NEAR(value, 0.9 + 0.05 * 6.0, 1e-9);
}

TEST(Scalarize, InfeasibleIsNegativeInfinity) {
  EvalResult result = sample_result();
  result.feasible = false;
  EXPECT_EQ(scalarize(result, {{Metric::Accuracy, 1.0, true, false}}),
            -std::numeric_limits<double>::infinity());
}

TEST(Registry, BuiltinsPresent) {
  const FitnessRegistry registry = FitnessRegistry::with_builtins();
  for (const char* name :
       {"accuracy", "throughput", "accuracy_x_throughput", "efficiency", "low_latency"}) {
    EXPECT_TRUE(registry.has(name)) << name;
  }
  EXPECT_FALSE(registry.has("nonexistent"));
  EXPECT_THROW(registry.get("nonexistent"), std::out_of_range);
}

TEST(Registry, BuiltinAccuracyOrdersByAccuracy) {
  const FitnessRegistry registry = FitnessRegistry::with_builtins();
  EvalResult low = sample_result();
  EvalResult high = sample_result();
  high.accuracy = 0.95;
  EXPECT_GT(registry.get("accuracy")(high), registry.get("accuracy")(low));
}

TEST(Registry, JointFitnessTradesThroughputForAccuracy) {
  const FitnessRegistry registry = FitnessRegistry::with_builtins();
  const auto& joint = registry.get("accuracy_x_throughput");
  EvalResult accurate = sample_result();
  EvalResult fast = sample_result();
  fast.accuracy = 0.89;            // one point lower
  fast.outputs_per_second = 1e8;   // but 100x faster
  // 0.01 accuracy loss vs 2 decades * 0.05 = 0.1 gain -> fast wins.
  EXPECT_GT(joint(fast), joint(accurate));

  fast.outputs_per_second = 1.1e6;  // only marginally faster
  EXPECT_LT(joint(fast), joint(accurate));
}

TEST(Registry, CustomRegistrationAndOverride) {
  FitnessRegistry registry;
  registry.register_fn("mine", [](const EvalResult& r) { return r.accuracy * 2.0; });
  EXPECT_DOUBLE_EQ(registry.get("mine")(sample_result()), 1.8);
  registry.register_fn("mine", [](const EvalResult&) { return 7.0; });
  EXPECT_DOUBLE_EQ(registry.get("mine")(sample_result()), 7.0);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"mine"});
}

TEST(Registry, LowLatencyPrefersFasterResults) {
  const FitnessRegistry registry = FitnessRegistry::with_builtins();
  EvalResult slow = sample_result();
  EvalResult fast = sample_result();
  fast.latency_seconds = 1e-6;
  EXPECT_GT(registry.get("low_latency")(fast), registry.get("low_latency")(slow));
}

}  // namespace
}  // namespace ecad::evo
