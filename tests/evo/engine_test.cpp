#include "evo/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <set>
#include <thread>

namespace ecad::evo {
namespace {

// Synthetic landscape: fitness rewards a specific trait combination, so the
// engine must actually search to win.  No training involved — fast.
EvalResult landscape(const Genome& genome) {
  EvalResult result;
  double score = 0.0;
  // Prefer exactly 2 hidden layers of width 64.
  if (genome.nna.hidden.size() == 2) score += 0.3;
  for (std::size_t width : genome.nna.hidden) {
    if (width == 64) score += 0.2;
  }
  if (genome.nna.activation == nn::Activation::Tanh) score += 0.1;
  if (genome.grid.rows == 16) score += 0.2;
  result.accuracy = score;
  return result;
}

double accuracy_fitness(const EvalResult& result) { return result.accuracy; }

EvolutionConfig small_config() {
  EvolutionConfig config;
  config.population_size = 8;
  config.max_evaluations = 60;
  return config;
}

TEST(Engine, ImprovesOverRandomInitialization) {
  EvolutionEngine engine(SearchSpace{}, small_config(), landscape, accuracy_fitness);
  util::Rng rng(5);
  util::ThreadPool pool(1);
  const EvolutionResult result = engine.run(rng, pool);

  // Best of the initial population (first 8 history entries) vs final best.
  double initial_best = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    initial_best = std::max(initial_best, result.history[i].fitness);
  }
  EXPECT_GE(result.best.fitness, initial_best);
  EXPECT_GT(result.best.fitness, 0.5);  // random genomes average well below this
}

TEST(Engine, RespectsEvaluationBudget) {
  EvolutionEngine engine(SearchSpace{}, small_config(), landscape, accuracy_fitness);
  util::Rng rng(6);
  util::ThreadPool pool(2);
  const EvolutionResult result = engine.run(rng, pool);
  EXPECT_LE(result.stats.models_evaluated, 60u + pool.size());
  EXPECT_EQ(result.history.size(), result.stats.models_evaluated);
}

TEST(Engine, NeverEvaluatesDuplicateGenomes) {
  std::atomic<int> calls{0};
  auto counting = [&calls](const Genome& genome) {
    calls.fetch_add(1);
    return landscape(genome);
  };
  EvolutionEngine engine(SearchSpace{}, small_config(), counting, accuracy_fitness);
  util::Rng rng(7);
  util::ThreadPool pool(1);
  const EvolutionResult result = engine.run(rng, pool);

  std::set<std::string> keys;
  for (const auto& candidate : result.history) keys.insert(candidate.genome.key());
  EXPECT_EQ(keys.size(), result.history.size()) << "duplicate genome was evaluated";
  EXPECT_EQ(static_cast<std::size_t>(calls.load()), result.history.size());
}

TEST(Engine, PopulationSortedBestFirst) {
  EvolutionEngine engine(SearchSpace{}, small_config(), landscape, accuracy_fitness);
  util::Rng rng(8);
  util::ThreadPool pool(1);
  const EvolutionResult result = engine.run(rng, pool);
  for (std::size_t i = 1; i < result.population.size(); ++i) {
    EXPECT_GE(result.population[i - 1].fitness, result.population[i].fitness);
  }
  EXPECT_GE(result.best.fitness, result.population.front().fitness);
}

TEST(Engine, StatsAreInternallyConsistent) {
  EvolutionEngine engine(SearchSpace{}, small_config(), landscape, accuracy_fitness);
  util::Rng rng(9);
  util::ThreadPool pool(1);
  const EvolutionResult result = engine.run(rng, pool);
  EXPECT_GT(result.stats.total_eval_seconds, 0.0);
  EXPECT_NEAR(result.stats.avg_eval_seconds,
              result.stats.total_eval_seconds /
                  static_cast<double>(result.stats.models_evaluated),
              1e-9);
  EXPECT_GT(result.stats.wall_seconds, 0.0);
}

TEST(Engine, DeterministicWithSerialPool) {
  auto run_once = [] {
    EvolutionEngine engine(SearchSpace{}, small_config(), landscape, accuracy_fitness);
    util::Rng rng(11);
    util::ThreadPool pool(1);
    return engine.run(rng, pool);
  };
  const EvolutionResult a = run_once();
  const EvolutionResult b = run_once();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].genome.key(), b.history[i].genome.key());
  }
  EXPECT_EQ(a.best.genome.key(), b.best.genome.key());
}

TEST(Engine, InfeasibleCandidatesNeverWin) {
  auto hostile = [](const Genome& genome) {
    EvalResult result = landscape(genome);
    // Make the otherwise-best trait infeasible.
    if (genome.grid.rows == 16) {
      result.feasible = false;
      result.accuracy = 1e9;
    }
    return result;
  };
  auto fitness = [](const EvalResult& result) {
    return result.feasible ? result.accuracy : -std::numeric_limits<double>::infinity();
  };
  EvolutionEngine engine(SearchSpace{}, small_config(), hostile, fitness);
  util::Rng rng(13);
  util::ThreadPool pool(1);
  const EvolutionResult result = engine.run(rng, pool);
  EXPECT_TRUE(result.best.result.feasible);
}

TEST(Engine, ConfigValidation) {
  EvolutionConfig bad = small_config();
  bad.population_size = 1;
  EXPECT_THROW(EvolutionEngine(SearchSpace{}, bad, landscape, accuracy_fitness),
               std::invalid_argument);
  bad = small_config();
  bad.max_evaluations = 2;  // below population
  EXPECT_THROW(EvolutionEngine(SearchSpace{}, bad, landscape, accuracy_fitness),
               std::invalid_argument);
  bad = small_config();
  bad.tournament_size = 0;
  EXPECT_THROW(EvolutionEngine(SearchSpace{}, bad, landscape, accuracy_fitness),
               std::invalid_argument);
}

TEST(Engine, ParallelPoolStillRespectsInvariants) {
  EvolutionEngine engine(SearchSpace{}, small_config(), landscape, accuracy_fitness);
  util::Rng rng(15);
  util::ThreadPool pool(4);
  const EvolutionResult result = engine.run(rng, pool);
  std::set<std::string> keys;
  for (const auto& candidate : result.history) keys.insert(candidate.genome.key());
  EXPECT_EQ(keys.size(), result.history.size());
  EXPECT_GT(result.best.fitness, 0.0);
}

// ---------------------------------------------------------------------------
// Overlapped (pipelined) evolution
// ---------------------------------------------------------------------------

EvolutionConfig overlapped_config() {
  EvolutionConfig config = small_config();
  config.overlap_generations = true;
  config.max_inflight_batches = 2;
  config.batch_size = 4;
  return config;
}

TEST(EngineOverlap, RespectsBudgetAndNeverEvaluatesDuplicates) {
  std::atomic<int> calls{0};
  auto counting = [&calls](const Genome& genome) {
    calls.fetch_add(1);
    return landscape(genome);
  };
  EvolutionEngine engine(SearchSpace{}, overlapped_config(), counting, accuracy_fitness);
  util::Rng rng(21);
  util::ThreadPool pool(2);
  const EvolutionResult result = engine.run(rng, pool);

  EXPECT_LE(result.stats.models_evaluated, overlapped_config().max_evaluations);
  EXPECT_EQ(result.history.size(), result.stats.models_evaluated);
  std::set<std::string> keys;
  for (const auto& candidate : result.history) keys.insert(candidate.genome.key());
  EXPECT_EQ(keys.size(), result.history.size()) << "duplicate genome was evaluated";
  EXPECT_EQ(static_cast<std::size_t>(calls.load()), result.history.size());
  // Breeding actually ran ahead of settled batches.
  EXPECT_GT(result.stats.overlapped_batches, 0u);
}

TEST(EngineOverlap, TrajectoryIsDeterministic) {
  auto run_once = [] {
    EvolutionEngine engine(SearchSpace{}, overlapped_config(), landscape, accuracy_fitness);
    util::Rng rng(23);
    util::ThreadPool pool(4);  // pool width must not matter: folds are ordered
    return engine.run(rng, pool);
  };
  const EvolutionResult a = run_once();
  const EvolutionResult b = run_once();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].genome.key(), b.history[i].genome.key()) << "index " << i;
  }
  EXPECT_EQ(a.best.genome.key(), b.best.genome.key());
  EXPECT_EQ(a.stats.models_evaluated, b.stats.models_evaluated);
}

TEST(EngineOverlap, KeepsTwoBatchesInFlightWithASlowEvaluator) {
  // Gauge the evaluator-side concurrency: with max_inflight_batches = 2 the
  // dispatcher must overlap two batch evaluations at least once.
  std::atomic<int> active{0};
  std::atomic<int> max_active{0};
  EvolutionEngine::BatchEvaluator slow_batches =
      [&](const std::vector<Genome>& genomes, util::ThreadPool&) {
        const int now = active.fetch_add(1) + 1;
        int expected = max_active.load();
        while (now > expected && !max_active.compare_exchange_weak(expected, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(15));
        std::vector<EvalOutcome> outcomes(genomes.size());
        for (std::size_t i = 0; i < genomes.size(); ++i) {
          outcomes[i].result = landscape(genomes[i]);
          outcomes[i].ok = true;
        }
        active.fetch_sub(1);
        return outcomes;
      };
  EvolutionEngine engine(SearchSpace{}, overlapped_config(), slow_batches, accuracy_fitness);
  util::Rng rng(27);
  util::ThreadPool pool(2);
  const EvolutionResult result = engine.run(rng, pool);
  EXPECT_GT(result.stats.models_evaluated, 0u);
  EXPECT_GE(max_active.load(), 2) << "batches never overlapped";
}

TEST(EngineOverlap, BatchFailurePropagatesOutOfRun) {
  EvolutionEngine::BatchEvaluator exploding =
      [](const std::vector<Genome>& genomes, util::ThreadPool&) {
        std::vector<EvalOutcome> outcomes(genomes.size());
        for (std::size_t i = 0; i < genomes.size(); ++i) {
          outcomes[i].error = "synthetic batch failure";
        }
        return outcomes;
      };
  EvolutionConfig config = overlapped_config();
  EvolutionEngine engine(SearchSpace{}, config, std::move(exploding), accuracy_fitness);
  util::Rng rng(29);
  util::ThreadPool pool(2);
  EXPECT_THROW(engine.run(rng, pool), std::runtime_error);
}

TEST(EngineOverlap, ConfigValidation) {
  EvolutionConfig bad = overlapped_config();
  bad.max_inflight_batches = 0;
  EXPECT_THROW(EvolutionEngine(SearchSpace{}, bad, landscape, accuracy_fitness),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// AsyncBatchDispatcher
// ---------------------------------------------------------------------------

TEST(AsyncBatchDispatcher, SubmitPollWaitLifecycle) {
  util::ThreadPool pool(2);
  const EvolutionEngine::BatchEvaluator evaluate =
      [](const std::vector<Genome>& genomes, util::ThreadPool&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        std::vector<EvalOutcome> outcomes(genomes.size());
        for (std::size_t i = 0; i < genomes.size(); ++i) {
          outcomes[i].result.accuracy = static_cast<double>(i);
          outcomes[i].ok = true;
        }
        return outcomes;
      };
  AsyncBatchDispatcher dispatcher(evaluate, pool);

  SearchSpace space;
  util::Rng rng(31);
  std::vector<Genome> batch;
  for (int i = 0; i < 3; ++i) batch.push_back(random_genome(space, rng));
  const auto ticket = dispatcher.submit(batch);
  EXPECT_EQ(dispatcher.in_flight(), 1u);

  const std::vector<EvalOutcome> outcomes = dispatcher.wait(ticket);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[1].result.accuracy, 1.0);
  EXPECT_EQ(dispatcher.in_flight(), 0u);

  // A collected (or never-issued) ticket is an error, and poll says no.
  EXPECT_FALSE(dispatcher.poll(ticket));
  EXPECT_THROW(dispatcher.wait(ticket), std::invalid_argument);
}

}  // namespace
}  // namespace ecad::evo
