// Wire-format compatibility guard (ISSUE 4 satellite): committed golden
// frames under tests/net/golden/ pin the on-wire encoding.  If today's
// encoders stop producing these exact bytes, or today's decoders stop
// accepting them, the protocol silently drifted and a rolling-upgrade fleet
// (v1 daemons + v2 master) would break — so the build fails instead.
//
// Regenerating (only after an *intentional*, version-gated format change):
//     ECAD_REGEN_GOLDEN=1 ./ecad_net_tests --gtest_filter='Golden*'
// then commit the rewritten fixtures with the change that justified them.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "net/wire.h"

#ifndef ECAD_NET_GOLDEN_DIR
#error "ECAD_NET_GOLDEN_DIR must point at tests/net/golden (set by tests/CMakeLists.txt)"
#endif

namespace ecad::net {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(ECAD_NET_GOLDEN_DIR) + "/" + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "missing golden fixture " << path
                  << " (regenerate with ECAD_REGEN_GOLDEN=1)";
    return {};
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

bool regen_requested() {
  const char* env = std::getenv("ECAD_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Encoder half of the guard: today's encoder must reproduce the committed
/// bytes exactly.  In regen mode the fixture is rewritten first.
void expect_matches_golden(const std::string& name, const std::vector<std::uint8_t>& encoded) {
  if (regen_requested()) write_file(golden_path(name), encoded);
  const std::vector<std::uint8_t> golden = read_file(golden_path(name));
  ASSERT_EQ(encoded.size(), golden.size()) << name << ": frame size drifted";
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(encoded[i], golden[i]) << name << ": byte " << i << " drifted";
  }
}

// Fixed, fully-specified payload contents — never derived from defaults that
// another change could move under us.
evo::Genome golden_genome() {
  evo::Genome genome;
  genome.nna.hidden = {64, 32, 16};
  genome.nna.activation = nn::Activation::ReLU;
  genome.nna.use_bias = true;
  genome.grid.rows = 8;
  genome.grid.cols = 16;
  genome.grid.vec_width = 4;
  genome.grid.interleave_m = 2;
  genome.grid.interleave_n = 32;
  return genome;
}

evo::EvalResult golden_result() {
  evo::EvalResult result;
  result.accuracy = 0.875;
  result.outputs_per_second = 123456.789;
  result.latency_seconds = 0.0009765625;
  result.potential_gflops = 512.0;
  result.effective_gflops = 448.25;
  result.hw_efficiency = 0.875048828125;
  result.power_watts = 17.5;
  result.fmax_mhz = 287.5;
  result.parameters = 4242.0;
  result.flops_per_sample = 8484.0;
  result.eval_seconds = 1.25;
  result.feasible = true;
  return result;
}

TEST(GoldenFrames, HelloV1) {
  WireWriter payload;
  payload.put_string("ecad-master");
  expect_matches_golden("hello_v1.bin", encode_frame(MsgType::Hello, payload.bytes()));
}

TEST(GoldenFrames, HelloAckV1) {
  WireWriter payload;
  payload.put_string("analytic");
  expect_matches_golden("hello_ack_v1.bin", encode_frame(MsgType::HelloAck, payload.bytes()));
}

TEST(GoldenFrames, ControlFramesV1) {
  expect_matches_golden("ping_v1.bin", encode_frame(MsgType::Ping, {}));
  expect_matches_golden("pong_v1.bin", encode_frame(MsgType::Pong, {}));
  expect_matches_golden("shutdown_v1.bin", encode_frame(MsgType::Shutdown, {}));
}

TEST(GoldenFrames, EvalRequestV1EncodesAndDecodes) {
  WireWriter payload;
  payload.put_u64(7);
  write_genome(payload, golden_genome());
  expect_matches_golden("eval_request_v1.bin", encode_frame(MsgType::EvalRequest, payload.bytes()));

  // Decoder half: the committed frame must still be accepted and must still
  // mean what it meant.
  const std::vector<std::uint8_t> golden = read_file(golden_path("eval_request_v1.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::EvalRequest);
  EXPECT_EQ(header.version, 1);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  EXPECT_EQ(reader.get_u64(), 7u);
  EXPECT_EQ(read_genome(reader), golden_genome());
  reader.expect_end();
}

TEST(GoldenFrames, EvalResponseOkV1EncodesAndDecodes) {
  WireWriter payload;
  payload.put_u64(7);
  payload.put_u8(1);
  write_eval_result(payload, golden_result());
  expect_matches_golden("eval_response_ok_v1.bin",
                        encode_frame(MsgType::EvalResponse, payload.bytes()));

  const std::vector<std::uint8_t> golden = read_file(golden_path("eval_response_ok_v1.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::EvalResponse);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  EXPECT_EQ(reader.get_u64(), 7u);
  EXPECT_EQ(reader.get_u8(), 1);
  const evo::EvalResult decoded = read_eval_result(reader);
  reader.expect_end();
  const evo::EvalResult expected = golden_result();
  EXPECT_EQ(decoded.accuracy, expected.accuracy);
  EXPECT_EQ(decoded.outputs_per_second, expected.outputs_per_second);
  EXPECT_EQ(decoded.eval_seconds, expected.eval_seconds);
  EXPECT_EQ(decoded.feasible, expected.feasible);
}

TEST(GoldenFrames, EvalResponseErrorV1) {
  WireWriter payload;
  payload.put_u64(9);
  payload.put_u8(0);
  payload.put_string("cannot evaluate genome");
  expect_matches_golden("eval_response_err_v1.bin",
                        encode_frame(MsgType::EvalResponse, payload.bytes()));
}

// The v2 fixtures pin the new generation's encoding from day one, so v2
// itself cannot drift silently either.
TEST(GoldenFrames, EvalBatchRequestV2EncodesAndDecodes) {
  EvalBatchRequest request;
  request.batch_id = 11;
  request.genomes = {golden_genome(), golden_genome()};
  request.genomes[1].nna.hidden = {128};
  request.genomes[1].nna.use_bias = false;
  WireWriter payload;
  write_eval_batch_request(payload, request);
  expect_matches_golden("eval_batch_request_v2.bin",
                        encode_frame(MsgType::EvalBatchRequest, payload.bytes()));

  const std::vector<std::uint8_t> golden = read_file(golden_path("eval_batch_request_v2.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::EvalBatchRequest);
  EXPECT_EQ(header.version, 2);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  const EvalBatchRequest decoded = read_eval_batch_request(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.batch_id, 11u);
  ASSERT_EQ(decoded.genomes.size(), 2u);
  EXPECT_EQ(decoded.genomes[0], request.genomes[0]);
  EXPECT_EQ(decoded.genomes[1], request.genomes[1]);
}

TEST(GoldenFrames, EvalBatchResponseV2) {
  EvalBatchResponse response;
  response.batch_id = 11;
  evo::EvalOutcome ok;
  ok.ok = true;
  ok.result = golden_result();
  evo::EvalOutcome failed;
  failed.ok = false;
  failed.error = "cannot evaluate genome";
  response.items = {ok, failed};
  WireWriter payload;
  write_eval_batch_response(payload, response);
  expect_matches_golden("eval_batch_response_v2.bin",
                        encode_frame(MsgType::EvalBatchResponse, payload.bytes()));
}

TEST(GoldenFrames, HelloV2WithVersionTrailer) {
  WireWriter payload;
  write_hello_payload(payload, "ecad-master", 2);
  expect_matches_golden("hello_v2.bin", encode_frame(MsgType::Hello, payload.bytes()));
}

// The v3 fixtures pin the streaming generation's encoding from day one, so
// v3 itself cannot drift silently either.
TEST(GoldenFrames, EvalItemResultV3EncodesAndDecodes) {
  EvalItemResult item;
  item.batch_id = 21;
  item.index = 2;
  item.outcome.ok = true;
  item.outcome.result = golden_result();
  WireWriter payload;
  write_eval_item_result(payload, item);
  expect_matches_golden("eval_item_result_v3.bin",
                        encode_frame(MsgType::EvalItemResult, payload.bytes()));

  const std::vector<std::uint8_t> golden = read_file(golden_path("eval_item_result_v3.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::EvalItemResult);
  EXPECT_EQ(header.version, 3);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  const EvalItemResult decoded = read_eval_item_result(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.batch_id, 21u);
  EXPECT_EQ(decoded.index, 2u);
  ASSERT_TRUE(decoded.outcome.ok);
  const evo::EvalResult expected = golden_result();
  EXPECT_EQ(decoded.outcome.result.accuracy, expected.accuracy);
  EXPECT_EQ(decoded.outcome.result.eval_seconds, expected.eval_seconds);
  EXPECT_EQ(decoded.outcome.result.feasible, expected.feasible);
}

TEST(GoldenFrames, EvalItemResultErrorV3) {
  EvalItemResult item;
  item.batch_id = 21;
  item.index = 5;
  item.outcome.ok = false;
  item.outcome.error = "cannot evaluate genome";
  WireWriter payload;
  write_eval_item_result(payload, item);
  expect_matches_golden("eval_item_result_err_v3.bin",
                        encode_frame(MsgType::EvalItemResult, payload.bytes()));
}

TEST(GoldenFrames, EvalBatchDoneV3EncodesAndDecodes) {
  EvalBatchDone done;
  done.batch_id = 21;
  done.count = 6;
  WireWriter payload;
  write_eval_batch_done(payload, done);
  expect_matches_golden("eval_batch_done_v3.bin",
                        encode_frame(MsgType::EvalBatchDone, payload.bytes()));

  const std::vector<std::uint8_t> golden = read_file(golden_path("eval_batch_done_v3.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::EvalBatchDone);
  EXPECT_EQ(header.version, 3);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  const EvalBatchDone decoded = read_eval_batch_done(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.batch_id, 21u);
  EXPECT_EQ(decoded.count, 6u);
}

TEST(GoldenFrames, HelloV3WithVersionTrailer) {
  WireWriter payload;
  write_hello_payload(payload, "ecad-master", 3);
  expect_matches_golden("hello_v3.bin", encode_frame(MsgType::Hello, payload.bytes()));
}

// The v4 fixtures pin the search-service generation's encoding from day
// one, so v4 itself cannot drift silently either.
namespace {

core::SearchRequest golden_search_request() {
  core::SearchRequest request;
  request.seed = 11;
  request.threads = 3;
  request.fitness = "accuracy";
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = 24;
  request.evolution.batch_size = 3;
  request.space.search_hardware = true;
  return request;
}

evo::Candidate golden_candidate() {
  evo::Candidate candidate;
  candidate.genome = golden_genome();
  candidate.result = golden_result();
  candidate.fitness = 0.875;
  return candidate;
}

}  // namespace

TEST(GoldenFrames, SubmitSearchV4EncodesAndDecodes) {
  SubmitSearch submit;
  submit.submit_id = 31;
  submit.request = golden_search_request();
  WireWriter payload;
  write_submit_search(payload, submit);
  expect_matches_golden("submit_search_v4.bin",
                        encode_frame(MsgType::SubmitSearch, payload.bytes()));

  const std::vector<std::uint8_t> golden = read_file(golden_path("submit_search_v4.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::SubmitSearch);
  EXPECT_EQ(header.version, 4);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  const SubmitSearch decoded = read_submit_search(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.submit_id, 31u);
  EXPECT_EQ(decoded.request.seed, 11u);
  EXPECT_EQ(decoded.request.evolution.max_evaluations, 24u);
  EXPECT_EQ(decoded.request.fitness, "accuracy");
}

TEST(GoldenFrames, SearchAcceptedV4) {
  SearchAccepted accepted;
  accepted.submit_id = 31;
  accepted.search_id = 5;
  accepted.queue_position = 2;
  WireWriter payload;
  write_search_accepted(payload, accepted);
  expect_matches_golden("search_accepted_v4.bin",
                        encode_frame(MsgType::SearchAccepted, payload.bytes()));
}

TEST(GoldenFrames, SearchProgressV4EncodesAndDecodes) {
  SearchProgress progress;
  progress.search_id = 5;
  progress.generation = 3;
  progress.models_evaluated = 15;
  progress.max_evaluations = 24;
  progress.pareto_front_size = 4;
  progress.best_fitness = 0.9375;
  WireWriter payload;
  write_search_progress(payload, progress);
  expect_matches_golden("search_progress_v4.bin",
                        encode_frame(MsgType::SearchProgress, payload.bytes()));

  const std::vector<std::uint8_t> golden = read_file(golden_path("search_progress_v4.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::SearchProgress);
  EXPECT_EQ(header.version, 4);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  const SearchProgress decoded = read_search_progress(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.search_id, 5u);
  EXPECT_EQ(decoded.generation, 3u);
  EXPECT_EQ(decoded.best_fitness, 0.9375);
}

TEST(GoldenFrames, SearchDoneV4EncodesAndDecodes) {
  SearchDone done;
  done.search_id = 5;
  done.status = SearchDone::Status::Completed;
  done.record.history = {golden_candidate(), golden_candidate()};
  done.record.history[1].fitness = 0.9375;
  done.record.best = done.record.history[1];
  done.record.models_evaluated = 2;
  done.record.duplicates_skipped = 1;
  WireWriter payload;
  write_search_done(payload, done);
  expect_matches_golden("search_done_v4.bin", encode_frame(MsgType::SearchDone, payload.bytes()));

  const std::vector<std::uint8_t> golden = read_file(golden_path("search_done_v4.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::SearchDone);
  EXPECT_EQ(header.version, 4);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  const SearchDone decoded = read_search_done(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.status, SearchDone::Status::Completed);
  ASSERT_EQ(decoded.record.history.size(), 2u);
  EXPECT_EQ(decoded.record.best.fitness, 0.9375);
  EXPECT_EQ(decoded.record.models_evaluated, 2u);
  EXPECT_EQ(decoded.record.duplicates_skipped, 1u);
}

TEST(GoldenFrames, SearchDoneCanceledV4) {
  SearchDone done;
  done.search_id = 5;
  done.status = SearchDone::Status::Canceled;
  done.message = "daemon draining";
  WireWriter payload;
  write_search_done(payload, done);
  expect_matches_golden("search_done_err_v4.bin",
                        encode_frame(MsgType::SearchDone, payload.bytes()));
}

TEST(GoldenFrames, CancelSearchV4) {
  CancelSearch cancel;
  cancel.search_id = 5;
  WireWriter payload;
  write_cancel_search(payload, cancel);
  expect_matches_golden("cancel_search_v4.bin",
                        encode_frame(MsgType::CancelSearch, payload.bytes()));
}

TEST(GoldenFrames, HelloV4WithVersionTrailer) {
  WireWriter payload;
  write_hello_payload(payload, "ecad-master", 4);
  expect_matches_golden("hello_v4.bin", encode_frame(MsgType::Hello, payload.bytes()));
}

// The v5 fixtures pin the stats generation's encoding from day one, so v5
// itself cannot drift silently either.
TEST(GoldenFrames, GetStatsV5EncodesAndDecodes) {
  GetStats request;
  request.prefix = "net.";
  WireWriter payload;
  write_get_stats(payload, request);
  expect_matches_golden("get_stats_v5.bin", encode_frame(MsgType::GetStats, payload.bytes()));

  const std::vector<std::uint8_t> golden = read_file(golden_path("get_stats_v5.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::GetStats);
  EXPECT_EQ(header.version, 5);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  const GetStats decoded = read_get_stats(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.prefix, "net.");
}

TEST(GoldenFrames, StatsReportV5EncodesAndDecodes) {
  StatsReport report;
  StatsEntry counter;
  counter.name = "core.evals_completed_total";
  counter.kind = 0;
  counter.value = 48.0;
  counter.count = 48;
  StatsEntry gauge;
  gauge.name = "scheduler.searches_active";
  gauge.kind = 1;
  gauge.value = 2.0;
  StatsEntry histogram;
  histogram.name = "core.eval_seconds";
  histogram.kind = 2;
  histogram.count = 6;
  histogram.sum = 0.0859375;
  histogram.buckets = {0, 1, 2, 3};  // truncated tail: trailing zeros dropped
  report.entries = {counter, gauge, histogram};
  WireWriter payload;
  write_stats_report(payload, report);
  expect_matches_golden("stats_report_v5.bin",
                        encode_frame(MsgType::StatsReport, payload.bytes()));

  const std::vector<std::uint8_t> golden = read_file(golden_path("stats_report_v5.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::StatsReport);
  EXPECT_EQ(header.version, 5);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  const StatsReport decoded = read_stats_report(reader);
  reader.expect_end();
  ASSERT_EQ(decoded.entries.size(), 3u);
  EXPECT_EQ(decoded.entries[0].name, "core.evals_completed_total");
  EXPECT_EQ(decoded.entries[0].value, 48.0);
  EXPECT_EQ(decoded.entries[1].kind, 1);
  EXPECT_EQ(decoded.entries[2].count, 6u);
  EXPECT_EQ(decoded.entries[2].sum, 0.0859375);
  EXPECT_EQ(decoded.entries[2].buckets, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(GoldenFrames, HelloV5WithVersionTrailer) {
  WireWriter payload;
  write_hello_payload(payload, "ecad-master", 5);
  expect_matches_golden("hello_v5.bin", encode_frame(MsgType::Hello, payload.bytes()));
}

// The v6 fixtures pin the fleet-cache generation's encoding from day one,
// so v6 itself cannot drift silently either.
TEST(GoldenFrames, CacheLookupV6EncodesAndDecodes) {
  CacheLookup lookup;
  lookup.keys = {0x0123456789abcdefull, 0xfedcba9876543210ull, 42};
  WireWriter payload;
  write_cache_lookup(payload, lookup);
  expect_matches_golden("cache_lookup_v6.bin",
                        encode_frame(MsgType::CacheLookup, payload.bytes()));

  const std::vector<std::uint8_t> golden = read_file(golden_path("cache_lookup_v6.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::CacheLookup);
  EXPECT_EQ(header.version, 6);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  const CacheLookup decoded = read_cache_lookup(reader);
  reader.expect_end();
  ASSERT_EQ(decoded.keys.size(), 3u);
  EXPECT_EQ(decoded.keys[0], 0x0123456789abcdefull);
  EXPECT_EQ(decoded.keys[1], 0xfedcba9876543210ull);
  EXPECT_EQ(decoded.keys[2], 42u);
}

TEST(GoldenFrames, CacheStoreV6EncodesAndDecodes) {
  CacheStore store;
  store.entries.push_back(CacheEntry{0x0123456789abcdefull, golden_result()});
  evo::EvalResult second = golden_result();
  second.accuracy = 0.9375;
  second.feasible = false;
  store.entries.push_back(CacheEntry{42, second});
  WireWriter payload;
  write_cache_store(payload, store);
  expect_matches_golden("cache_store_v6.bin", encode_frame(MsgType::CacheStore, payload.bytes()));

  const std::vector<std::uint8_t> golden = read_file(golden_path("cache_store_v6.bin"));
  ASSERT_GE(golden.size(), kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(golden.data());
  EXPECT_EQ(header.type, MsgType::CacheStore);
  EXPECT_EQ(header.version, 6);
  WireReader reader(golden.data() + kFrameHeaderBytes, golden.size() - kFrameHeaderBytes);
  const CacheStore decoded = read_cache_store(reader);
  reader.expect_end();
  ASSERT_EQ(decoded.entries.size(), 2u);
  EXPECT_EQ(decoded.entries[0].key, 0x0123456789abcdefull);
  EXPECT_EQ(decoded.entries[0].result.accuracy, golden_result().accuracy);
  EXPECT_EQ(decoded.entries[0].result.eval_seconds, golden_result().eval_seconds);
  EXPECT_TRUE(decoded.entries[0].result.feasible);
  EXPECT_EQ(decoded.entries[1].key, 42u);
  EXPECT_EQ(decoded.entries[1].result.accuracy, 0.9375);
  EXPECT_FALSE(decoded.entries[1].result.feasible);
}

TEST(GoldenFrames, HelloV6WithVersionTrailer) {
  WireWriter payload;
  write_hello_payload(payload, "ecad-master", 6);
  expect_matches_golden("hello_v6.bin", encode_frame(MsgType::Hello, payload.bytes()));
}

}  // namespace
}  // namespace ecad::net
