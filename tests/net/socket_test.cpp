#include "net/socket.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

namespace ecad::net {
namespace {

TEST(Endpoint, ParsesHostPort) {
  const Endpoint a = parse_endpoint("127.0.0.1:7001");
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 7001);
  EXPECT_EQ(a.to_string(), "127.0.0.1:7001");

  const Endpoint b = parse_endpoint("worker-3.cluster:65535");
  EXPECT_EQ(b.host, "worker-3.cluster");
  EXPECT_EQ(b.port, 65535);
}

TEST(Endpoint, RejectsMalformedInput) {
  EXPECT_THROW(parse_endpoint("nohost"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint(":7001"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:0"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:99999"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:7x"), std::invalid_argument);
}

TEST(Endpoint, ParsesListsSkippingEmpties) {
  const auto list = parse_endpoint_list("127.0.0.1:1, 127.0.0.1:2 ,,127.0.0.1:3,");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].port, 1);
  EXPECT_EQ(list[1].port, 2);
  EXPECT_EQ(list[2].port, 3);
  EXPECT_TRUE(parse_endpoint_list("").empty());
  EXPECT_TRUE(parse_endpoint_list(" , ").empty());
}

TEST(SocketLoopback, EphemeralListenerAcceptsAndEchoes) {
  Listener listener("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid());
  ASSERT_GT(listener.port(), 0);

  std::thread client([port = listener.port()] {
    Socket socket = Socket::connect({"127.0.0.1", port}, 2000);
    const char message[] = "ping over loopback";
    socket.send_all(message, sizeof(message));
    char echo[sizeof(message)] = {};
    socket.recv_exact(echo, sizeof(echo), 2000);
    EXPECT_STREQ(echo, message);
  });

  auto accepted = listener.accept(2000);
  ASSERT_TRUE(accepted.has_value());
  char buffer[32] = {};
  accepted->recv_exact(buffer, 19, 2000);
  accepted->send_all(buffer, 19);
  client.join();
}

TEST(SocketLoopback, AcceptTimesOutCleanly) {
  Listener listener("127.0.0.1", 0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(listener.accept(50).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 40);
}

TEST(SocketLoopback, RecvTimesOutWhenPeerIsSilent) {
  Listener listener("127.0.0.1", 0);
  Socket client = Socket::connect({"127.0.0.1", listener.port()}, 2000);
  auto server_side = listener.accept(2000);
  ASSERT_TRUE(server_side.has_value());
  char byte = 0;
  EXPECT_THROW(client.recv_exact(&byte, 1, 50), NetError);
}

TEST(SocketLoopback, PeerCloseSurfacesAsNetError) {
  Listener listener("127.0.0.1", 0);
  Socket client = Socket::connect({"127.0.0.1", listener.port()}, 2000);
  {
    auto server_side = listener.accept(2000);
    ASSERT_TRUE(server_side.has_value());
    // server_side destructs here -> FIN
  }
  char byte = 0;
  EXPECT_THROW(client.recv_exact(&byte, 1, 2000), NetError);
}

TEST(SocketLoopback, ConnectToClosedPortFailsFast) {
  std::uint16_t dead_port = 0;
  {
    Listener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }  // closed again: nothing listens there now
  EXPECT_THROW(Socket::connect({"127.0.0.1", dead_port}, 500), NetError);
}

TEST(SocketLoopback, LargeTransfersSurvivePartialWrites) {
  Listener listener("127.0.0.1", 0);
  std::vector<char> blob(4 * 1024 * 1024);
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<char>(i * 31);

  std::thread client([port = listener.port(), &blob] {
    Socket socket = Socket::connect({"127.0.0.1", port}, 2000);
    socket.send_all(blob.data(), blob.size());
  });

  auto accepted = listener.accept(2000);
  ASSERT_TRUE(accepted.has_value());
  std::vector<char> received(blob.size());
  accepted->recv_exact(received.data(), received.size(), 10000);
  client.join();
  EXPECT_EQ(std::memcmp(received.data(), blob.data(), blob.size()), 0);
}

}  // namespace
}  // namespace ecad::net
