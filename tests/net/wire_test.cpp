// Serialization coverage (ISSUE 3 satellite): exhaustive randomized
// round-trips over Genome / EvalResult / SearchRequest, plus rejection of
// truncated and corrupted frames.  Doubles are compared by bit pattern so
// NaN payloads and signed zeros count.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "util/rng.h"

namespace ecad::net {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void expect_bit_equal(double a, double b) { EXPECT_EQ(bits_of(a), bits_of(b)); }

void expect_result_equal(const evo::EvalResult& a, const evo::EvalResult& b) {
  expect_bit_equal(a.accuracy, b.accuracy);
  expect_bit_equal(a.outputs_per_second, b.outputs_per_second);
  expect_bit_equal(a.latency_seconds, b.latency_seconds);
  expect_bit_equal(a.potential_gflops, b.potential_gflops);
  expect_bit_equal(a.effective_gflops, b.effective_gflops);
  expect_bit_equal(a.hw_efficiency, b.hw_efficiency);
  expect_bit_equal(a.power_watts, b.power_watts);
  expect_bit_equal(a.fmax_mhz, b.fmax_mhz);
  expect_bit_equal(a.parameters, b.parameters);
  expect_bit_equal(a.flops_per_sample, b.flops_per_sample);
  expect_bit_equal(a.eval_seconds, b.eval_seconds);
  EXPECT_EQ(a.feasible, b.feasible);
}

evo::Genome round_trip(const evo::Genome& genome) {
  WireWriter writer;
  write_genome(writer, genome);
  WireReader reader(writer.bytes());
  evo::Genome decoded = read_genome(reader);
  reader.expect_end();
  return decoded;
}

TEST(WirePrimitives, IntegersAreLittleEndianAndExact) {
  WireWriter writer;
  writer.put_u8(0xAB);
  writer.put_u16(0x1234);
  writer.put_u32(0xDEADBEEF);
  writer.put_u64(0x0123456789ABCDEFull);
  const auto& bytes = writer.bytes();
  ASSERT_EQ(bytes.size(), 1u + 2 + 4 + 8);
  EXPECT_EQ(bytes[0], 0xAB);
  EXPECT_EQ(bytes[1], 0x34);  // u16 low byte first
  EXPECT_EQ(bytes[2], 0x12);
  EXPECT_EQ(bytes[3], 0xEF);  // u32 low byte first
  EXPECT_EQ(bytes[6], 0xDE);

  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.get_u8(), 0xAB);
  EXPECT_EQ(reader.get_u16(), 0x1234);
  EXPECT_EQ(reader.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.get_u64(), 0x0123456789ABCDEFull);
  reader.expect_end();
}

TEST(WirePrimitives, DoublesRoundTripBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.5e-300,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (double value : values) {
    WireWriter writer;
    writer.put_f64(value);
    WireReader reader(writer.bytes());
    expect_bit_equal(reader.get_f64(), value);
  }
}

TEST(WirePrimitives, RandomDoublesSurviveAnyBitPattern) {
  util::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t pattern = rng();
    double value = 0.0;
    std::memcpy(&value, &pattern, sizeof(value));
    WireWriter writer;
    writer.put_f64(value);
    WireReader reader(writer.bytes());
    EXPECT_EQ(bits_of(reader.get_f64()), pattern);
  }
}

TEST(WirePrimitives, StringsAndVectorsRoundTrip) {
  WireWriter writer;
  writer.put_string("");
  writer.put_string("accuracy_x_throughput");
  writer.put_string(std::string("\0binary\xff", 8));
  writer.put_size_vector({});
  writer.put_size_vector({1, 0, std::numeric_limits<std::size_t>::max()});
  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.get_string(), "");
  EXPECT_EQ(reader.get_string(), "accuracy_x_throughput");
  EXPECT_EQ(reader.get_string(), std::string("\0binary\xff", 8));
  EXPECT_TRUE(reader.get_size_vector().empty());
  EXPECT_EQ(reader.get_size_vector(),
            (std::vector<std::size_t>{1, 0, std::numeric_limits<std::size_t>::max()}));
  reader.expect_end();
}

TEST(WirePrimitives, TruncatedReadsThrowNotOverread) {
  WireWriter writer;
  writer.put_u64(42);
  for (std::size_t cut = 0; cut < 8; ++cut) {
    WireReader reader(writer.bytes().data(), cut);
    EXPECT_THROW(reader.get_u64(), WireError) << "cut=" << cut;
  }
}

TEST(WirePrimitives, HostileLengthPrefixesAreRejected) {
  // A string length prefix far beyond the buffer must throw, not allocate.
  WireWriter writer;
  writer.put_u32(0xFFFFFFFFu);
  WireReader reader(writer.bytes());
  EXPECT_THROW(reader.get_string(), WireError);

  WireWriter vec;
  vec.put_u32(0x00FFFFFFu);  // below the element cap but beyond the buffer
  WireReader vec_reader(vec.bytes());
  EXPECT_THROW(vec_reader.get_size_vector(), WireError);
}

// ---------------------------------------------------------------------------
// Genome
// ---------------------------------------------------------------------------

TEST(WireGenome, RandomizedRoundTripIsExact) {
  evo::SearchSpace space;  // defaults span the full paper search space
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    evo::Genome genome = evo::random_genome(space, rng);
    const evo::Genome decoded = round_trip(genome);
    EXPECT_EQ(decoded, genome);
    EXPECT_EQ(decoded.key(), genome.key());
  }
}

TEST(WireGenome, EdgeShapesRoundTrip) {
  evo::Genome genome;
  genome.nna.hidden = {};  // degenerate: no hidden layers
  genome.nna.use_bias = false;
  genome.nna.activation = nn::Activation::Elu;
  genome.grid.rows = 1;
  genome.grid.cols = 1;
  genome.grid.vec_width = 1;
  genome.grid.interleave_m = 1;
  genome.grid.interleave_n = 1;
  EXPECT_EQ(round_trip(genome), genome);

  genome.nna.hidden = std::vector<std::size_t>(32, 512);
  genome.grid.rows = 4096;
  EXPECT_EQ(round_trip(genome), genome);
}

TEST(WireGenome, EveryActivationSurvives) {
  for (nn::Activation activation : nn::kSearchableActivations) {
    evo::Genome genome;
    genome.nna.hidden = {8};
    genome.nna.activation = activation;
    EXPECT_EQ(round_trip(genome).nna.activation, activation);
  }
}

TEST(WireGenome, TruncatedGenomePayloadAlwaysThrows) {
  evo::SearchSpace space;
  util::Rng rng(11);
  const evo::Genome genome = evo::random_genome(space, rng);
  WireWriter writer;
  write_genome(writer, genome);
  const auto& bytes = writer.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader reader(bytes.data(), cut);
    EXPECT_THROW(
        {
          evo::Genome decoded = read_genome(reader);
          reader.expect_end();
          (void)decoded;
        },
        WireError)
        << "cut=" << cut;
  }
}

TEST(WireGenome, CorruptedActivationNameIsRejected) {
  evo::Genome genome;
  genome.nna.hidden = {16, 16};
  WireWriter writer;
  write_genome(writer, genome);
  std::vector<std::uint8_t> bytes = writer.bytes();
  // The activation string "relu" sits right after the hidden vector
  // (4 count + 2*8 widths + 4 length); smash its first character.
  const std::size_t activation_offset = 4 + 16 + 4;
  ASSERT_LT(activation_offset, bytes.size());
  bytes[activation_offset] = 'z';
  WireReader reader(bytes.data(), bytes.size());
  EXPECT_THROW(read_genome(reader), WireError);
}

// ---------------------------------------------------------------------------
// EvalResult
// ---------------------------------------------------------------------------

TEST(WireEvalResult, RandomizedRoundTripIsBitExact) {
  util::Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    evo::EvalResult result;
    // Arbitrary bit patterns, not just nice values: NaNs and infs included.
    double* fields[] = {&result.accuracy,        &result.outputs_per_second,
                        &result.latency_seconds, &result.potential_gflops,
                        &result.effective_gflops, &result.hw_efficiency,
                        &result.power_watts,     &result.fmax_mhz,
                        &result.parameters,      &result.flops_per_sample,
                        &result.eval_seconds};
    for (double* field : fields) {
      const std::uint64_t pattern = rng();
      std::memcpy(field, &pattern, sizeof(double));
    }
    result.feasible = (i % 2) == 0;

    WireWriter writer;
    write_eval_result(writer, result);
    WireReader reader(writer.bytes());
    const evo::EvalResult decoded = read_eval_result(reader);
    reader.expect_end();
    expect_result_equal(decoded, result);
  }
}

TEST(WireEvalResult, TruncationAlwaysThrows) {
  evo::EvalResult result;
  result.accuracy = 0.875;
  WireWriter writer;
  write_eval_result(writer, result);
  const auto& bytes = writer.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader reader(bytes.data(), cut);
    EXPECT_THROW(read_eval_result(reader), WireError) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// SearchRequest
// ---------------------------------------------------------------------------

core::SearchRequest random_request(util::Rng& rng) {
  core::SearchRequest request;
  request.space.min_hidden_layers = 1 + rng.next_index(3);
  request.space.max_hidden_layers = request.space.min_hidden_layers + rng.next_index(4);
  request.space.width_choices.clear();
  const std::size_t widths = 1 + rng.next_index(6);
  for (std::size_t i = 0; i < widths; ++i) {
    request.space.width_choices.push_back(1u << rng.next_index(10));
  }
  request.space.activations.clear();
  const std::size_t activation_count = 1 + rng.next_index(5);
  for (std::size_t i = 0; i < activation_count; ++i) {
    request.space.activations.push_back(
        nn::kSearchableActivations[rng.next_index(5)]);
  }
  request.space.allow_no_bias = rng.next_bool(0.5);
  request.space.search_hardware = rng.next_bool(0.5);
  request.space.grid.row_choices = {1 + rng.next_index(32)};
  request.space.grid.col_choices = {1 + rng.next_index(32), 64};
  request.space.grid.vec_choices = {4, 8, 16};
  request.space.grid.interleave_choices = {1 + rng.next_index(8)};
  request.evolution.population_size = 2 + rng.next_index(30);
  request.evolution.max_evaluations = 100 + rng.next_index(1000);
  request.evolution.tournament_size = 1 + rng.next_index(5);
  request.evolution.crossover_probability = rng.next_double();
  request.evolution.mutation_strength = rng.next_double() * 4.0;
  request.evolution.dedup_attempts = rng.next_index(20);
  request.evolution.batch_size = rng.next_index(16);
  request.evolution.overlap_generations = rng.next_bool(0.5);
  request.evolution.max_inflight_batches = 1 + rng.next_index(4);
  request.fitness = rng.next_bool(0.5) ? "accuracy" : "accuracy_x_throughput";
  request.seed = rng();
  request.threads = rng.next_index(16);
  return request;
}

void expect_request_equal(const core::SearchRequest& a, const core::SearchRequest& b) {
  EXPECT_EQ(a.space.min_hidden_layers, b.space.min_hidden_layers);
  EXPECT_EQ(a.space.max_hidden_layers, b.space.max_hidden_layers);
  EXPECT_EQ(a.space.width_choices, b.space.width_choices);
  ASSERT_EQ(a.space.activations.size(), b.space.activations.size());
  for (std::size_t i = 0; i < a.space.activations.size(); ++i) {
    EXPECT_EQ(a.space.activations[i], b.space.activations[i]);
  }
  EXPECT_EQ(a.space.allow_no_bias, b.space.allow_no_bias);
  EXPECT_EQ(a.space.search_hardware, b.space.search_hardware);
  EXPECT_EQ(a.space.grid.row_choices, b.space.grid.row_choices);
  EXPECT_EQ(a.space.grid.col_choices, b.space.grid.col_choices);
  EXPECT_EQ(a.space.grid.vec_choices, b.space.grid.vec_choices);
  EXPECT_EQ(a.space.grid.interleave_choices, b.space.grid.interleave_choices);
  EXPECT_EQ(a.evolution.population_size, b.evolution.population_size);
  EXPECT_EQ(a.evolution.max_evaluations, b.evolution.max_evaluations);
  EXPECT_EQ(a.evolution.tournament_size, b.evolution.tournament_size);
  expect_bit_equal(a.evolution.crossover_probability, b.evolution.crossover_probability);
  expect_bit_equal(a.evolution.mutation_strength, b.evolution.mutation_strength);
  EXPECT_EQ(a.evolution.dedup_attempts, b.evolution.dedup_attempts);
  EXPECT_EQ(a.evolution.batch_size, b.evolution.batch_size);
  EXPECT_EQ(a.evolution.overlap_generations, b.evolution.overlap_generations);
  EXPECT_EQ(a.evolution.max_inflight_batches, b.evolution.max_inflight_batches);
  EXPECT_EQ(a.fitness, b.fitness);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.threads, b.threads);
}

TEST(WireSearchRequest, RandomizedRoundTripIsExact) {
  util::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const core::SearchRequest request = random_request(rng);
    WireWriter writer;
    write_search_request(writer, request);
    WireReader reader(writer.bytes());
    const core::SearchRequest decoded = read_search_request(reader);
    reader.expect_end();
    expect_request_equal(decoded, request);
  }
}

TEST(WireSearchRequest, TruncationAlwaysThrows) {
  util::Rng rng(19);
  const core::SearchRequest request = random_request(rng);
  WireWriter writer;
  write_search_request(writer, request);
  const auto& bytes = writer.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader reader(bytes.data(), cut);
    EXPECT_THROW(
        {
          core::SearchRequest decoded = read_search_request(reader);
          reader.expect_end();
          (void)decoded;
        },
        WireError)
        << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(WireFrame, EncodeDecodeRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> frame = encode_frame(MsgType::EvalRequest, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  // The on-wire prefix is literally "ECAD" — what a packet capture shows.
  EXPECT_EQ(frame[0], 'E');
  EXPECT_EQ(frame[1], 'C');
  EXPECT_EQ(frame[2], 'A');
  EXPECT_EQ(frame[3], 'D');
  const FrameHeader header = decode_frame_header(frame.data());
  EXPECT_EQ(header.type, MsgType::EvalRequest);
  EXPECT_EQ(header.payload_size, payload.size());
}

TEST(WireFrame, BadMagicVersionTypeAndSizeAreRejected) {
  const std::vector<std::uint8_t> good = encode_frame(MsgType::Ping, {});

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(decode_frame_header(bad_magic.data()), WireError);

  std::vector<std::uint8_t> bad_version = good;
  bad_version[4] = 0x7F;
  EXPECT_THROW(decode_frame_header(bad_version.data()), WireError);

  std::vector<std::uint8_t> bad_type = good;
  bad_type[6] = 0xEE;
  bad_type[7] = 0xEE;
  EXPECT_THROW(decode_frame_header(bad_type.data()), WireError);

  std::vector<std::uint8_t> bad_size = good;
  bad_size[8] = 0xFF;
  bad_size[9] = 0xFF;
  bad_size[10] = 0xFF;
  bad_size[11] = 0xFF;
  EXPECT_THROW(decode_frame_header(bad_size.data()), WireError);
}

TEST(WireFrame, TryExtractHandlesPartialFrames) {
  WireWriter body;
  body.put_u64(77);
  const std::vector<std::uint8_t> frame = encode_frame(MsgType::EvalResponse, body.bytes());

  std::vector<std::uint8_t> buffer;
  Frame out;
  // Feed byte by byte: no frame until the last byte lands.
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    buffer.push_back(frame[i]);
    EXPECT_FALSE(try_extract_frame(buffer, out));
  }
  buffer.push_back(frame.back());
  ASSERT_TRUE(try_extract_frame(buffer, out));
  EXPECT_EQ(out.type, MsgType::EvalResponse);
  EXPECT_EQ(out.payload.size(), 8u);
  EXPECT_TRUE(buffer.empty());
}

TEST(WireFrame, TwoFramesInOneBufferPopInOrder) {
  std::vector<std::uint8_t> buffer = encode_frame(MsgType::Ping, {});
  const std::vector<std::uint8_t> second = encode_frame(MsgType::Pong, {9});
  buffer.insert(buffer.end(), second.begin(), second.end());

  Frame out;
  ASSERT_TRUE(try_extract_frame(buffer, out));
  EXPECT_EQ(out.type, MsgType::Ping);
  ASSERT_TRUE(try_extract_frame(buffer, out));
  EXPECT_EQ(out.type, MsgType::Pong);
  ASSERT_EQ(out.payload.size(), 1u);
  EXPECT_FALSE(try_extract_frame(buffer, out));
}

TEST(WireFrame, CorruptedStreamThrowsInsteadOfDesyncing) {
  std::vector<std::uint8_t> buffer = encode_frame(MsgType::Ping, {});
  buffer[2] ^= 0x40;  // corrupt the magic mid-stream
  Frame out;
  EXPECT_THROW(try_extract_frame(buffer, out), WireError);
}

}  // namespace
}  // namespace ecad::net
