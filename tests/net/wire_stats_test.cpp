// Protocol v5 stats frames: round-trips over GetStats / StatsReport (the
// write_get_stats/read_get_stats and write_stats_report/read_stats_report
// codec pairs), bounds rejection on both sides, frame-version rules, and the
// registry -> wire rendering the daemons answer GetStats with.
#include <gtest/gtest.h>

#include <cstring>

#include "net/stats.h"
#include "net/wire.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace ecad::net {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

StatsEntry random_entry(util::Rng& rng) {
  StatsEntry entry;
  entry.name = "metric." + std::to_string(rng());
  entry.kind = static_cast<std::uint8_t>(rng.next_index(3));
  std::uint64_t pattern = rng();
  std::memcpy(&entry.value, &pattern, sizeof(double));
  entry.count = rng();
  pattern = rng();
  std::memcpy(&entry.sum, &pattern, sizeof(double));
  const std::size_t buckets = rng.next_index(kMaxHistogramBuckets + 1);
  for (std::size_t i = 0; i < buckets; ++i) entry.buckets.push_back(rng());
  return entry;
}

TEST(WireGetStats, RoundTripsPrefix) {
  for (const std::string prefix : {std::string(""), std::string("net."),
                                   std::string("scheduler.gate_wait_seconds")}) {
    GetStats request;
    request.prefix = prefix;
    WireWriter writer;
    write_get_stats(writer, request);
    WireReader reader(writer.bytes());
    const GetStats decoded = read_get_stats(reader);
    reader.expect_end();
    EXPECT_EQ(decoded.prefix, prefix);
  }
}

TEST(WireStatsReport, RandomizedRoundTripIsExact) {
  util::Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    StatsReport report;
    const std::size_t count = rng.next_index(9);  // 0..8, empty included
    for (std::size_t i = 0; i < count; ++i) report.entries.push_back(random_entry(rng));

    WireWriter writer;
    write_stats_report(writer, report);
    WireReader reader(writer.bytes());
    const StatsReport decoded = read_stats_report(reader);
    reader.expect_end();

    ASSERT_EQ(decoded.entries.size(), report.entries.size());
    for (std::size_t i = 0; i < report.entries.size(); ++i) {
      const StatsEntry& sent = report.entries[i];
      const StatsEntry& got = decoded.entries[i];
      EXPECT_EQ(got.name, sent.name);
      EXPECT_EQ(got.kind, sent.kind);
      EXPECT_EQ(bits_of(got.value), bits_of(sent.value));
      EXPECT_EQ(got.count, sent.count);
      EXPECT_EQ(bits_of(got.sum), bits_of(sent.sum));
      EXPECT_EQ(got.buckets, sent.buckets);
    }
  }
}

TEST(WireStatsReport, TooManyEntriesIsRejectedOnWrite) {
  StatsReport report;
  report.entries.resize(kMaxStatsEntries + 1);
  WireWriter writer;
  EXPECT_THROW(write_stats_report(writer, report), WireError);
}

TEST(WireStatsReport, OversizedEntryCountIsRejectedOnRead) {
  WireWriter writer;
  writer.put_u32(kMaxStatsEntries + 1);
  WireReader reader(writer.bytes());
  EXPECT_THROW(read_stats_report(reader), WireError);
}

TEST(WireStatsReport, TooManyBucketsIsRejectedBothWays) {
  StatsReport report;
  StatsEntry entry;
  entry.name = "bad.hist";
  entry.kind = 2;
  entry.buckets.resize(kMaxHistogramBuckets + 1);
  report.entries.push_back(entry);
  WireWriter writer;
  EXPECT_THROW(write_stats_report(writer, report), WireError);

  // Hand-build the same overflow on the wire: a well-formed header followed
  // by a bucket count past the cap must throw before any allocation.
  WireWriter forged;
  forged.put_u32(1);
  forged.put_string("bad.hist");
  forged.put_u8(2);
  forged.put_f64(0.0);
  forged.put_u64(0);
  forged.put_f64(0.0);
  forged.put_u32(kMaxHistogramBuckets + 1);
  WireReader reader(forged.bytes());
  EXPECT_THROW(read_stats_report(reader), WireError);
}

TEST(WireStatsReport, TruncatedPayloadIsRejected) {
  StatsReport report;
  report.entries.push_back(StatsEntry{"m", 0, 1.0, 2, 3.0, {4, 5}});
  WireWriter writer;
  write_stats_report(writer, report);
  std::vector<std::uint8_t> bytes = writer.bytes();
  bytes.pop_back();
  WireReader reader(bytes);
  EXPECT_THROW(read_stats_report(reader), WireError);
}

TEST(WireStats, FramesCarryProtocolVersionFive) {
  EXPECT_EQ(frame_version_for(MsgType::GetStats), 5);
  EXPECT_EQ(frame_version_for(MsgType::StatsReport), 5);
  // The stats frames are the only v5 messages; everything older keeps its
  // original generation (old peers reject only what they cannot parse).
  EXPECT_EQ(frame_version_for(MsgType::Hello), 1);
  EXPECT_EQ(frame_version_for(MsgType::SubmitSearch), 4);

  const std::vector<std::uint8_t> frame = encode_frame(MsgType::GetStats, {});
  const FrameHeader header = decode_frame_header(frame.data());
  EXPECT_EQ(header.version, 5);
  EXPECT_EQ(header.type, MsgType::GetStats);
}

TEST(WireStats, StatsMsgTypesAreKnownAndTheNextValueIsNot) {
  std::uint8_t header_bytes[kFrameHeaderBytes];
  const auto header_for = [&](std::uint16_t raw_type) {
    const std::vector<std::uint8_t> frame =
        encode_frame(MsgType::GetStats, {});  // valid scaffold, then patch type
    std::memcpy(header_bytes, frame.data(), kFrameHeaderBytes);
    header_bytes[6] = static_cast<std::uint8_t>(raw_type & 0xff);
    header_bytes[7] = static_cast<std::uint8_t>(raw_type >> 8);
  };
  header_for(static_cast<std::uint16_t>(MsgType::StatsReport));
  EXPECT_EQ(decode_frame_header(header_bytes).type, MsgType::StatsReport);
  header_for(21);  // one past the last known MsgType (CacheStore = 20)
  EXPECT_THROW(decode_frame_header(header_bytes), WireError);
}

TEST(WireStats, ToStringNamesStatsFrames) {
  EXPECT_STREQ(to_string(MsgType::GetStats), "GetStats");
  EXPECT_STREQ(to_string(MsgType::StatsReport), "StatsReport");
}

TEST(SnapshotStatsReport, RendersTheProcessRegistry) {
  // The global registry accumulates across the whole test binary; use a
  // unique prefix so this test sees exactly what it wrote.
  util::metrics().counter("wire_stats_test.counter").add(5);
  util::metrics().gauge("wire_stats_test.gauge").set(2.5);
  util::metrics().histogram("wire_stats_test.hist").observe(1e-3);

  const StatsReport report = snapshot_stats_report("wire_stats_test.");
  ASSERT_EQ(report.entries.size(), 3u);
  EXPECT_EQ(report.entries[0].name, "wire_stats_test.counter");
  EXPECT_EQ(report.entries[0].kind, static_cast<std::uint8_t>(util::MetricKind::Counter));
  EXPECT_EQ(report.entries[0].value, 5.0);
  EXPECT_EQ(report.entries[1].name, "wire_stats_test.gauge");
  EXPECT_EQ(report.entries[1].value, 2.5);
  EXPECT_EQ(report.entries[2].name, "wire_stats_test.hist");
  EXPECT_EQ(report.entries[2].count, 1u);
  ASSERT_EQ(report.entries[2].buckets.size(), util::Histogram::kBuckets);

  // And the rendered report survives the wire intact.
  WireWriter writer;
  write_stats_report(writer, report);
  WireReader reader(writer.bytes());
  const StatsReport decoded = read_stats_report(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.entries.size(), report.entries.size());
  EXPECT_EQ(decoded.entries[2].buckets, report.entries[2].buckets);
}

}  // namespace
}  // namespace ecad::net
