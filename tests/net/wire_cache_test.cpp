// Protocol v6 fleet-cache frames and key derivation: golden-hash pins on
// fnv1a64/fleet_cache_key (a drifting key function silently invalidates
// every deployed cache), round-trips over CacheLookup / CacheStore, bounds
// rejection on both sides, frame-version rules, and the daemon-side
// FleetResultCache LRU behavior behind them.
#include <gtest/gtest.h>

#include <cstring>

#include "net/fleet_cache.h"
#include "net/wire.h"
#include "util/rng.h"

namespace ecad::net {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

evo::EvalResult random_result(util::Rng& rng) {
  // Hostile bit patterns included: every double round-trips as raw IEEE-754
  // bits, so NaNs and infinities must survive byte-exact.
  evo::EvalResult result;
  const auto random_double = [&rng] {
    const std::uint64_t pattern = rng();
    double v = 0.0;
    std::memcpy(&v, &pattern, sizeof(v));
    return v;
  };
  result.accuracy = random_double();
  result.outputs_per_second = random_double();
  result.latency_seconds = random_double();
  result.potential_gflops = random_double();
  result.effective_gflops = random_double();
  result.hw_efficiency = random_double();
  result.power_watts = random_double();
  result.fmax_mhz = random_double();
  result.parameters = random_double();
  result.flops_per_sample = random_double();
  result.eval_seconds = random_double();
  result.feasible = rng.next_index(2) == 0;
  return result;
}

// ---------------------------------------------------------------------------
// Key derivation

TEST(FleetCacheKey, Fnv1a64MatchesGoldenValues) {
  // Pinned against an independent implementation.  If any of these move, the
  // key function changed and every deployed fleet cache is silently invalid
  // — that is a cache-format break, not a refactor.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);  // the FNV-1a offset basis
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("ecad"), 0x3018ea602618dbc4ull);
}

TEST(FleetCacheKey, EvalConfigIdRendersCanonically) {
  EvalConfigId id;
  id.worker_kind = "accuracy";
  id.data_seed = 7;
  id.data_samples = 400;
  id.data_features = 16;
  id.data_classes = 3;
  id.train_epochs = 3;
  id.eval_seed = 42;
  // The exact bytes that get hashed: reordering or renaming a field here is
  // a cache-format break and must show up as a test diff.
  EXPECT_EQ(id.to_string(),
            "worker=accuracy;data_seed=7;data_samples=400;data_features=16;"
            "data_classes=3;train_epochs=3;eval_seed=42");
}

TEST(FleetCacheKey, FleetCacheKeyMatchesGoldenValue) {
  EvalConfigId id;
  id.worker_kind = "accuracy";
  id.data_seed = 7;
  id.data_samples = 400;
  id.data_features = 16;
  id.data_classes = 3;
  id.train_epochs = 3;
  id.eval_seed = 42;
  const std::string genome_key = "nna{h=64,32,16;act=relu;bias=1}|grid{8x16v4i2,32}";
  EXPECT_EQ(fleet_cache_key(id.to_string(), genome_key), 0x4b2b309b1b64a98eull);
  // The '\n' join is unambiguous: moving bytes across the boundary must
  // produce a different key.
  EXPECT_NE(fleet_cache_key(id.to_string() + "n", genome_key),
            fleet_cache_key(id.to_string(), "n" + genome_key));
}

TEST(FleetCacheKey, DistinctConfigsPartitionTheKeySpace) {
  EvalConfigId a;
  a.worker_kind = "accuracy";
  EvalConfigId b = a;
  b.eval_seed = 1;
  const std::string genome_key = "g";
  EXPECT_NE(fleet_cache_key(a.to_string(), genome_key),
            fleet_cache_key(b.to_string(), genome_key));
}

// ---------------------------------------------------------------------------
// Wire codecs

TEST(WireCacheLookup, RandomizedRoundTripIsExact) {
  util::Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    CacheLookup lookup;
    const std::size_t count = rng.next_index(17);  // 0..16, empty included
    for (std::size_t i = 0; i < count; ++i) lookup.keys.push_back(rng());

    WireWriter writer;
    write_cache_lookup(writer, lookup);
    WireReader reader(writer.bytes());
    const CacheLookup decoded = read_cache_lookup(reader);
    reader.expect_end();
    EXPECT_EQ(decoded.keys, lookup.keys);
  }
}

TEST(WireCacheStore, RandomizedRoundTripIsExact) {
  util::Rng rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    CacheStore store;
    const std::size_t count = rng.next_index(9);
    for (std::size_t i = 0; i < count; ++i) {
      store.entries.push_back(CacheEntry{rng(), random_result(rng)});
    }

    WireWriter writer;
    write_cache_store(writer, store);
    WireReader reader(writer.bytes());
    const CacheStore decoded = read_cache_store(reader);
    reader.expect_end();

    ASSERT_EQ(decoded.entries.size(), store.entries.size());
    for (std::size_t i = 0; i < store.entries.size(); ++i) {
      const CacheEntry& sent = store.entries[i];
      const CacheEntry& got = decoded.entries[i];
      EXPECT_EQ(got.key, sent.key);
      EXPECT_EQ(bits_of(got.result.accuracy), bits_of(sent.result.accuracy));
      EXPECT_EQ(bits_of(got.result.outputs_per_second), bits_of(sent.result.outputs_per_second));
      EXPECT_EQ(bits_of(got.result.latency_seconds), bits_of(sent.result.latency_seconds));
      EXPECT_EQ(bits_of(got.result.potential_gflops), bits_of(sent.result.potential_gflops));
      EXPECT_EQ(bits_of(got.result.effective_gflops), bits_of(sent.result.effective_gflops));
      EXPECT_EQ(bits_of(got.result.hw_efficiency), bits_of(sent.result.hw_efficiency));
      EXPECT_EQ(bits_of(got.result.power_watts), bits_of(sent.result.power_watts));
      EXPECT_EQ(bits_of(got.result.fmax_mhz), bits_of(sent.result.fmax_mhz));
      EXPECT_EQ(bits_of(got.result.parameters), bits_of(sent.result.parameters));
      EXPECT_EQ(bits_of(got.result.flops_per_sample), bits_of(sent.result.flops_per_sample));
      EXPECT_EQ(bits_of(got.result.eval_seconds), bits_of(sent.result.eval_seconds));
      EXPECT_EQ(got.result.feasible, sent.result.feasible);
    }
  }
}

TEST(WireCacheLookup, TooManyKeysIsRejectedOnWrite) {
  CacheLookup lookup;
  lookup.keys.resize(kMaxCacheEntries + 1);
  WireWriter writer;
  EXPECT_THROW(write_cache_lookup(writer, lookup), WireError);
}

TEST(WireCacheLookup, OversizedKeyCountIsRejectedOnRead) {
  // A hostile count past the cap must throw before any allocation.
  WireWriter forged;
  forged.put_u32(kMaxCacheEntries + 1);
  WireReader reader(forged.bytes());
  EXPECT_THROW(read_cache_lookup(reader), WireError);
}

TEST(WireCacheLookup, CountBeyondPayloadIsRejectedBeforeAllocation) {
  // In-cap count, but the payload cannot actually hold that many keys: the
  // truncation pre-check must reject it without reserving for the claim.
  WireWriter forged;
  forged.put_u32(kMaxCacheEntries);
  forged.put_u64(1);  // one key where kMaxCacheEntries were promised
  WireReader reader(forged.bytes());
  EXPECT_THROW(read_cache_lookup(reader), WireError);
}

TEST(WireCacheLookup, TruncatedPayloadIsRejected) {
  CacheLookup lookup;
  lookup.keys = {1, 2, 3};
  WireWriter writer;
  write_cache_lookup(writer, lookup);
  std::vector<std::uint8_t> bytes = writer.bytes();
  bytes.pop_back();
  WireReader reader(bytes);
  EXPECT_THROW(read_cache_lookup(reader), WireError);
}

TEST(WireCacheStore, TooManyEntriesIsRejectedOnWrite) {
  CacheStore store;
  store.entries.resize(kMaxCacheEntries + 1);
  WireWriter writer;
  EXPECT_THROW(write_cache_store(writer, store), WireError);
}

TEST(WireCacheStore, OversizedEntryCountIsRejectedOnRead) {
  WireWriter forged;
  forged.put_u32(kMaxCacheEntries + 1);
  WireReader reader(forged.bytes());
  EXPECT_THROW(read_cache_store(reader), WireError);
}

TEST(WireCacheStore, TruncatedPayloadIsRejected) {
  CacheStore store;
  store.entries.push_back(CacheEntry{7, evo::EvalResult{}});
  WireWriter writer;
  write_cache_store(writer, store);
  std::vector<std::uint8_t> bytes = writer.bytes();
  bytes.pop_back();
  WireReader reader(bytes);
  EXPECT_THROW(read_cache_store(reader), WireError);
}

TEST(WireCache, FramesCarryProtocolVersionSix) {
  EXPECT_EQ(frame_version_for(MsgType::CacheLookup), 6);
  EXPECT_EQ(frame_version_for(MsgType::CacheStore), 6);
  // Older generations keep their versions: a v5 peer rejects only the cache
  // frames it cannot parse, never the handshake.
  EXPECT_EQ(frame_version_for(MsgType::Hello), 1);
  EXPECT_EQ(frame_version_for(MsgType::GetStats), 5);

  const std::vector<std::uint8_t> frame = encode_frame(MsgType::CacheLookup, {});
  const FrameHeader header = decode_frame_header(frame.data());
  EXPECT_EQ(header.version, 6);
  EXPECT_EQ(header.type, MsgType::CacheLookup);
}

TEST(WireCache, ToStringNamesCacheFrames) {
  EXPECT_STREQ(to_string(MsgType::CacheLookup), "CacheLookup");
  EXPECT_STREQ(to_string(MsgType::CacheStore), "CacheStore");
}

// ---------------------------------------------------------------------------
// Daemon-side LRU store

TEST(FleetResultCache, ZeroBudgetDisablesTheTier) {
  FleetResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.store(1, evo::EvalResult{});
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(FleetResultCache, StoreThenLookupReturnsTheResult) {
  FleetResultCache cache(16 * kCacheEntryBytes);
  ASSERT_TRUE(cache.enabled());
  evo::EvalResult result;
  result.accuracy = 0.625;
  cache.store(9, result);
  const auto hit = cache.lookup(9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->accuracy, 0.625);
  EXPECT_FALSE(cache.lookup(10).has_value());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), kCacheEntryBytes);
}

TEST(FleetResultCache, EvictsLeastRecentlyUsed) {
  FleetResultCache cache(2 * kCacheEntryBytes);
  cache.store(1, evo::EvalResult{});
  cache.store(2, evo::EvalResult{});
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_TRUE(cache.lookup(1).has_value());
  cache.store(3, evo::EvalResult{});
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(FleetResultCache, RefreshingAKeyDoesNotGrowOrEvict) {
  FleetResultCache cache(2 * kCacheEntryBytes);
  evo::EvalResult first;
  first.accuracy = 0.25;
  cache.store(1, first);
  cache.store(2, evo::EvalResult{});
  evo::EvalResult refreshed;
  refreshed.accuracy = 0.75;
  cache.store(1, refreshed);  // refresh, not insert: nothing evicted
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_DOUBLE_EQ(cache.lookup(1)->accuracy, 0.75);
  // The refresh also renewed key 1's recency, so 2 is the next victim.
  cache.store(3, evo::EvalResult{});
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
}

TEST(FleetResultCache, SubEntryBudgetDisables) {
  // A budget below one entry's flat cost cannot hold anything; the tier
  // degrades to disabled rather than thrashing a single slot.
  FleetResultCache cache(kCacheEntryBytes - 1);
  EXPECT_FALSE(cache.enabled());
}

}  // namespace
}  // namespace ecad::net
