// Protocol v2 batch messages (ISSUE 4 satellite): randomized round-trips
// over EvalBatchRequest / EvalBatchResponse, truncation and corruption
// rejection, frame-version rules, and the version-tolerant Hello payloads.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "net/wire.h"
#include "util/rng.h"

namespace ecad::net {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

evo::EvalResult random_result(util::Rng& rng) {
  evo::EvalResult result;
  double* fields[] = {&result.accuracy,         &result.outputs_per_second,
                      &result.latency_seconds,  &result.potential_gflops,
                      &result.effective_gflops, &result.hw_efficiency,
                      &result.power_watts,      &result.fmax_mhz,
                      &result.parameters,       &result.flops_per_sample,
                      &result.eval_seconds};
  for (double* field : fields) {
    const std::uint64_t pattern = rng();
    std::memcpy(field, &pattern, sizeof(double));
  }
  result.feasible = rng.next_bool(0.5);
  return result;
}

void expect_result_bit_equal(const evo::EvalResult& a, const evo::EvalResult& b) {
  EXPECT_EQ(bits_of(a.accuracy), bits_of(b.accuracy));
  EXPECT_EQ(bits_of(a.outputs_per_second), bits_of(b.outputs_per_second));
  EXPECT_EQ(bits_of(a.latency_seconds), bits_of(b.latency_seconds));
  EXPECT_EQ(bits_of(a.potential_gflops), bits_of(b.potential_gflops));
  EXPECT_EQ(bits_of(a.effective_gflops), bits_of(b.effective_gflops));
  EXPECT_EQ(bits_of(a.hw_efficiency), bits_of(b.hw_efficiency));
  EXPECT_EQ(bits_of(a.power_watts), bits_of(b.power_watts));
  EXPECT_EQ(bits_of(a.fmax_mhz), bits_of(b.fmax_mhz));
  EXPECT_EQ(bits_of(a.parameters), bits_of(b.parameters));
  EXPECT_EQ(bits_of(a.flops_per_sample), bits_of(b.flops_per_sample));
  EXPECT_EQ(bits_of(a.eval_seconds), bits_of(b.eval_seconds));
  EXPECT_EQ(a.feasible, b.feasible);
}

TEST(WireBatchRequest, RandomizedRoundTripIsExact) {
  evo::SearchSpace space;
  util::Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    EvalBatchRequest request;
    request.batch_id = rng();
    const std::size_t count = rng.next_index(17);  // 0..16, empty included
    for (std::size_t i = 0; i < count; ++i) {
      request.genomes.push_back(evo::random_genome(space, rng));
    }

    WireWriter writer;
    write_eval_batch_request(writer, request);
    WireReader reader(writer.bytes());
    const EvalBatchRequest decoded = read_eval_batch_request(reader);
    reader.expect_end();

    EXPECT_EQ(decoded.batch_id, request.batch_id);
    ASSERT_EQ(decoded.genomes.size(), request.genomes.size());
    for (std::size_t i = 0; i < request.genomes.size(); ++i) {
      EXPECT_EQ(decoded.genomes[i], request.genomes[i]) << "item " << i;
    }
  }
}

TEST(WireBatchResponse, RandomizedRoundTripIsBitExact) {
  util::Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    EvalBatchResponse response;
    response.batch_id = rng();
    const std::size_t count = rng.next_index(17);
    for (std::size_t i = 0; i < count; ++i) {
      evo::EvalOutcome item;
      item.ok = rng.next_bool(0.7);
      if (item.ok) {
        item.result = random_result(rng);
      } else {
        item.error = "evaluation failed on item " + std::to_string(i);
      }
      response.items.push_back(std::move(item));
    }

    WireWriter writer;
    write_eval_batch_response(writer, response);
    WireReader reader(writer.bytes());
    const EvalBatchResponse decoded = read_eval_batch_response(reader);
    reader.expect_end();

    EXPECT_EQ(decoded.batch_id, response.batch_id);
    ASSERT_EQ(decoded.items.size(), response.items.size());
    for (std::size_t i = 0; i < response.items.size(); ++i) {
      EXPECT_EQ(decoded.items[i].ok, response.items[i].ok) << "item " << i;
      if (response.items[i].ok) {
        expect_result_bit_equal(decoded.items[i].result, response.items[i].result);
      } else {
        EXPECT_EQ(decoded.items[i].error, response.items[i].error) << "item " << i;
      }
    }
  }
}

TEST(WireBatchRequest, TruncationAlwaysThrows) {
  evo::SearchSpace space;
  util::Rng rng(31);
  EvalBatchRequest request;
  request.batch_id = 77;
  for (int i = 0; i < 3; ++i) request.genomes.push_back(evo::random_genome(space, rng));
  WireWriter writer;
  write_eval_batch_request(writer, request);
  const auto& bytes = writer.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader reader(bytes.data(), cut);
    EXPECT_THROW(
        {
          EvalBatchRequest decoded = read_eval_batch_request(reader);
          reader.expect_end();
          (void)decoded;
        },
        WireError)
        << "cut=" << cut;
  }
}

TEST(WireBatchResponse, TruncationAlwaysThrows) {
  util::Rng rng(37);
  EvalBatchResponse response;
  response.batch_id = 99;
  for (int i = 0; i < 3; ++i) {
    evo::EvalOutcome item;
    item.ok = (i != 1);
    if (item.ok) {
      item.result = random_result(rng);
    } else {
      item.error = "poisoned genome";
    }
    response.items.push_back(std::move(item));
  }
  WireWriter writer;
  write_eval_batch_response(writer, response);
  const auto& bytes = writer.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader reader(bytes.data(), cut);
    EXPECT_THROW(
        {
          EvalBatchResponse decoded = read_eval_batch_response(reader);
          reader.expect_end();
          (void)decoded;
        },
        WireError)
        << "cut=" << cut;
  }
}

TEST(WireBatchRequest, HostileCountsAreRejectedBeforeAllocation) {
  WireWriter writer;
  writer.put_u64(1);                    // batch id
  writer.put_u32(kMaxBatchItems + 1);   // count over the cap
  WireReader reader(writer.bytes());
  EXPECT_THROW(read_eval_batch_request(reader), WireError);

  WireWriter response;
  response.put_u64(1);
  response.put_u32(0xFFFFFFFFu);
  WireReader response_reader(response.bytes());
  EXPECT_THROW(read_eval_batch_response(response_reader), WireError);
}

TEST(WireBatchRequest, CountBeyondPayloadIsRejected) {
  // A plausible count with no genomes behind it must throw, not overread.
  WireWriter writer;
  writer.put_u64(5);
  writer.put_u32(64);
  WireReader reader(writer.bytes());
  EXPECT_THROW(read_eval_batch_request(reader), WireError);
}

TEST(WireBatchResponse, CorruptedOkFlagStillParsesSafely) {
  // Flip an ok byte from 1 to 0: the following EvalResult bytes get
  // reinterpreted as a string length, which must either parse as a string or
  // throw WireError — never read out of bounds (ASan guards the rest).
  util::Rng rng(41);
  EvalBatchResponse response;
  response.batch_id = 3;
  evo::EvalOutcome item;
  item.ok = true;
  item.result = random_result(rng);
  response.items.push_back(item);
  WireWriter writer;
  write_eval_batch_response(writer, response);
  std::vector<std::uint8_t> bytes = writer.bytes();
  bytes[8 + 4] = 0;  // the first item's ok flag sits after u64 id + u32 count
  WireReader reader(bytes.data(), bytes.size());
  try {
    const EvalBatchResponse decoded = read_eval_batch_response(reader);
    reader.expect_end();
    EXPECT_FALSE(decoded.items.at(0).ok);
  } catch (const WireError&) {
    // equally acceptable
  }
}

// ---------------------------------------------------------------------------
// Frame versioning
// ---------------------------------------------------------------------------

TEST(WireFrameVersion, BatchFramesCarryVersion2AndOthersVersion1) {
  const std::vector<std::uint8_t> batch = encode_frame(MsgType::EvalBatchRequest, {});
  EXPECT_EQ(batch[4], 2);  // version low byte
  EXPECT_EQ(batch[5], 0);
  const FrameHeader batch_header = decode_frame_header(batch.data());
  EXPECT_EQ(batch_header.version, 2);

  // v1 messages must keep the v1 header byte-for-byte: a v1-only peer
  // rejects exactly the frames it cannot parse, nothing else.
  for (MsgType type : {MsgType::Hello, MsgType::HelloAck, MsgType::EvalRequest,
                       MsgType::EvalResponse, MsgType::Ping, MsgType::Pong, MsgType::Shutdown}) {
    const std::vector<std::uint8_t> frame = encode_frame(type, {});
    EXPECT_EQ(frame[4], 1) << to_string(type);
    EXPECT_EQ(frame[5], 0) << to_string(type);
    EXPECT_EQ(decode_frame_header(frame.data()).version, 1) << to_string(type);
  }
}

TEST(WireFrameVersion, UnsupportedVersionsAreRejected) {
  std::vector<std::uint8_t> frame = encode_frame(MsgType::Ping, {});
  frame[4] = 0;  // below kMinProtocolVersion
  EXPECT_THROW(decode_frame_header(frame.data()), WireError);
  frame[4] = static_cast<std::uint8_t>(kProtocolVersion + 1);
  EXPECT_THROW(decode_frame_header(frame.data()), WireError);
}

// ---------------------------------------------------------------------------
// Hello payloads
// ---------------------------------------------------------------------------

TEST(WireHello, V1PayloadWithoutTrailerReadsAsVersion1) {
  WireWriter writer;
  writer.put_string("ecad-master");  // the exact v1 encoding
  WireReader reader(writer.bytes());
  const HelloPayload hello = read_hello_payload(reader);
  EXPECT_EQ(hello.name, "ecad-master");
  EXPECT_EQ(hello.max_version, 1);
}

TEST(WireHello, V2PayloadRoundTripsAndV1EncodingIsTrailerFree) {
  WireWriter v2;
  write_hello_payload(v2, "worker", 2);
  WireReader v2_reader(v2.bytes());
  const HelloPayload decoded = read_hello_payload(v2_reader);
  EXPECT_EQ(decoded.name, "worker");
  EXPECT_EQ(decoded.max_version, 2);

  // Pinned to 1, the writer must produce the v1 bytes exactly — old peers
  // call expect_end() after the name and would drop anything extra.
  WireWriter v1;
  write_hello_payload(v1, "worker", 1);
  WireWriter reference;
  reference.put_string("worker");
  EXPECT_EQ(v1.bytes(), reference.bytes());
}

TEST(WireHello, TrailingGarbageIsRejected) {
  WireWriter writer;
  writer.put_string("worker");
  writer.put_u16(2);
  writer.put_u8(0xEE);  // 3 trailing bytes: u16 version + 1 garbage byte
  WireReader reader(writer.bytes());
  EXPECT_THROW(read_hello_payload(reader), WireError);
}

}  // namespace
}  // namespace ecad::net
