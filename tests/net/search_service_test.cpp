// End-to-end search service (protocol v4): SearchClient against an
// in-process SearchServer + SearchScheduler — submission, progress
// streaming, determinism vs Master::search, cancellation, rejection, and
// version gating.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/master.h"
#include "core/search_scheduler.h"
#include "net/search_client.h"
#include "net/search_server.h"

namespace ecad::net {
namespace {

class AnalyticWorker final : public core::Worker {
 public:
  explicit AnalyticWorker(int delay_ms = 0) : delay_ms_(delay_ms) {}
  std::string name() const override { return "analytic"; }
  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    if (delay_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    }
    evo::EvalResult result;
    result.accuracy = 0.5 + 0.1 * static_cast<double>(genome.nna.hidden.size());
    result.outputs_per_second = 1e6 / static_cast<double>(genome.grid.dsp_usage());
    return result;
  }

 private:
  int delay_ms_ = 0;
};

core::SearchRequest sample_request(std::uint64_t seed, std::size_t evaluations = 24) {
  core::SearchRequest request;
  request.seed = seed;
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = evaluations;
  request.evolution.batch_size = 3;
  request.threads = 1;
  return request;
}

/// Worker + scheduler + server, started on an ephemeral port.
struct Service {
  explicit Service(int delay_ms = 0, std::size_t max_searches = 3)
      : worker(delay_ms),
        scheduler(worker,
                  [max_searches] {
                    core::SearchSchedulerOptions options;
                    options.max_concurrent_searches = max_searches;
                    options.dispatch_slots = 2;
                    return options;
                  }()),
        server(scheduler) {
    server.start();
  }

  SearchClient make_client(std::uint16_t max_protocol = kProtocolVersion) {
    SearchClientOptions options;
    options.host = "127.0.0.1";
    options.port = server.port();
    options.max_protocol = max_protocol;
    options.frame_timeout_ms = 60000;
    return SearchClient(options);
  }

  AnalyticWorker worker;
  core::SearchScheduler scheduler;
  SearchServer server;
};

TEST(SearchService, SubmittedSearchMatchesMasterSearchExactly) {
  Service service;
  core::Master master;
  const core::SearchRequest request = sample_request(11);
  const evo::EvolutionResult reference = master.search(service.worker, request);

  SearchClient client = service.make_client();
  client.connect();
  EXPECT_EQ(client.version(), kProtocolVersion);
  const std::uint64_t search_id = client.submit(request);
  EXPECT_GT(search_id, 0u);
  std::vector<SearchProgress> progress;
  const SearchDone done = client.stream(
      search_id, [&progress](const SearchProgress& frame) { progress.push_back(frame); });

  ASSERT_EQ(done.status, SearchDone::Status::Completed) << done.message;
  ASSERT_EQ(done.record.history.size(), reference.history.size());
  for (std::size_t i = 0; i < reference.history.size(); ++i) {
    EXPECT_EQ(done.record.history[i].genome.key(), reference.history[i].genome.key());
    EXPECT_EQ(done.record.history[i].fitness, reference.history[i].fitness);
    EXPECT_EQ(done.record.history[i].result.accuracy, reference.history[i].result.accuracy);
  }
  EXPECT_EQ(done.record.best.genome.key(), reference.best.genome.key());
  EXPECT_EQ(done.record.models_evaluated, reference.stats.models_evaluated);
  EXPECT_EQ(done.record.duplicates_skipped, reference.stats.duplicates_skipped);

  ASSERT_GE(progress.size(), 2u) << "expected generation 0 plus folds";
  EXPECT_EQ(progress.front().generation, 0u);
  EXPECT_EQ(progress.back().models_evaluated, 24u);
  for (const SearchProgress& frame : progress) {
    EXPECT_EQ(frame.search_id, search_id);
    EXPECT_EQ(frame.max_evaluations, 24u);
  }
}

TEST(SearchService, ThreeConcurrentClientsGetIndependentDeterministicResults) {
  Service service;
  core::Master master;
  const std::uint64_t seeds[] = {21, 22, 23};
  std::vector<evo::EvolutionResult> references;
  for (const std::uint64_t seed : seeds) {
    references.push_back(master.search(service.worker, sample_request(seed)));
  }

  struct ClientResult {
    SearchDone done;
    std::size_t progress_frames = 0;
  };
  std::vector<ClientResult> results(3);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < 3; ++i) {
    clients.emplace_back([&service, &results, &seeds, i] {
      SearchClient client = service.make_client();
      client.connect();
      const std::uint64_t id = client.submit(sample_request(seeds[i]));
      results[i].done = client.stream(id, [&results, i](const SearchProgress&) {
        ++results[i].progress_frames;
      });
    });
  }
  for (std::thread& thread : clients) thread.join();

  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(results[i].done.status, SearchDone::Status::Completed)
        << "seed " << seeds[i] << ": " << results[i].done.message;
    ASSERT_EQ(results[i].done.record.history.size(), references[i].history.size());
    for (std::size_t j = 0; j < references[i].history.size(); ++j) {
      EXPECT_EQ(results[i].done.record.history[j].genome.key(),
                references[i].history[j].genome.key())
          << "seed " << seeds[i] << " candidate " << j;
      EXPECT_EQ(results[i].done.record.history[j].fitness, references[i].history[j].fitness);
    }
    EXPECT_EQ(results[i].done.record.best.genome.key(), references[i].best.genome.key());
    EXPECT_GE(results[i].progress_frames, 2u);
  }
}

TEST(SearchService, CancelMidStreamYieldsCanceledDone) {
  Service service(/*delay_ms=*/2);
  SearchClient client = service.make_client();
  client.connect();
  const std::uint64_t search_id = client.submit(sample_request(5, /*evaluations=*/600));
  std::size_t frames = 0;
  bool cancel_sent = false;
  const SearchDone done = client.stream(search_id, [&](const SearchProgress& frame) {
    ++frames;
    if (!cancel_sent && frames >= 2) {
      client.cancel(frame.search_id);
      cancel_sent = true;
    }
  });
  EXPECT_EQ(done.status, SearchDone::Status::Canceled);
  EXPECT_EQ(done.message, "canceled by client");
  EXPECT_TRUE(done.record.history.empty());
  EXPECT_LT(frames, 250u) << "cancel did not stop the stream early";
}

TEST(SearchService, UnknownFitnessIsRejectedWithReason) {
  Service service;
  SearchClient client = service.make_client();
  client.connect();
  core::SearchRequest request = sample_request(1);
  request.fitness = "no-such-fitness";
  try {
    client.submit(request);
    FAIL() << "rejected submission did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-fitness"), std::string::npos) << e.what();
  }
  // The connection survives a rejection: a corrected submission goes through.
  const std::uint64_t id = client.submit(sample_request(1));
  const SearchDone done = client.stream(id, nullptr);
  EXPECT_EQ(done.status, SearchDone::Status::Completed);
}

TEST(SearchService, OldProtocolClientCannotSubmit) {
  Service service;
  SearchClient client = service.make_client(/*max_protocol=*/3);
  EXPECT_THROW(client.connect(), WireError);
}

TEST(SearchService, ShutdownFrameStopsTheServer) {
  Service service;
  SearchClient client = service.make_client();
  client.connect();
  client.shutdown_server();
  for (int i = 0; i < 100 && service.server.running(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(service.server.running());
  service.server.stop();
  EXPECT_EQ(service.server.searches_accepted(), 0u);
}

TEST(SearchService, ServerStopDrainsRunningSearches) {
  auto service = std::make_unique<Service>(/*delay_ms=*/2, /*max_searches=*/2);
  SearchClient client = service->make_client();
  client.connect();
  const std::uint64_t search_id = client.submit(sample_request(9, /*evaluations=*/600));
  // Let it get a couple of generations in.
  std::atomic<bool> stopped{false};
  std::thread stopper([&service, &stopped] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    service->server.stop();  // drains: the running search folds what is in flight
    stopped.store(true);
  });
  const SearchDone done = client.stream(search_id, nullptr);
  stopper.join();
  EXPECT_TRUE(stopped.load());
  EXPECT_EQ(done.status, SearchDone::Status::Canceled);
  EXPECT_EQ(done.message, "daemon draining");
}

}  // namespace
}  // namespace ecad::net
