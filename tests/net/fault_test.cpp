// Deterministic fault injection: ECAD_FAULT parsing and the seeded fate
// sequence the chaos smoke relies on to replay a faulty run exactly.
#include "net/fault.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ecad::net {
namespace {

// The injector is process-global; every test restores the disabled state.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().configure_for_testing(FaultConfig{}); }
};

TEST(ParseFaultConfig, ParsesFullSpec) {
  const FaultConfig config = parse_fault_config("seed:42,drop:0.05,short_write:0.02,delay_ms:3");
  EXPECT_EQ(config.seed, 42u);
  EXPECT_DOUBLE_EQ(config.drop, 0.05);
  EXPECT_DOUBLE_EQ(config.short_write, 0.02);
  EXPECT_EQ(config.delay_ms, 3);
  EXPECT_TRUE(config.enabled());
}

TEST(ParseFaultConfig, EmptyAndWhitespaceSpecDisables) {
  EXPECT_FALSE(parse_fault_config("").enabled());
  EXPECT_FALSE(parse_fault_config(" , ").enabled());
}

TEST(ParseFaultConfig, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_config("drop"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("drop:1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("drop:-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("drop:abc"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("seed:notanumber"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("delay_ms:-1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_config("unknown_key:1"), std::invalid_argument);
}

TEST_F(FaultInjectorTest, DisabledInjectsNothing) {
  FaultInjector& injector = FaultInjector::instance();
  injector.configure_for_testing(FaultConfig{});
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.send_fate(), FaultInjector::SendFate::Ok);
    EXPECT_FALSE(injector.drop_recv());
  }
  EXPECT_EQ(injector.injected(), 0u);
}

TEST_F(FaultInjectorTest, FateSequenceIsAPureFunctionOfTheSeed) {
  FaultConfig config;
  config.seed = 7;
  config.drop = 0.2;
  config.short_write = 0.2;

  FaultInjector& injector = FaultInjector::instance();
  std::vector<FaultInjector::SendFate> first;
  injector.configure_for_testing(config);
  for (int i = 0; i < 200; ++i) first.push_back(injector.send_fate());

  std::vector<FaultInjector::SendFate> second;
  injector.configure_for_testing(config);  // same seed -> same sequence
  for (int i = 0; i < 200; ++i) second.push_back(injector.send_fate());
  EXPECT_EQ(first, second);

  config.seed = 8;  // different seed -> (overwhelmingly) different sequence
  injector.configure_for_testing(config);
  std::vector<FaultInjector::SendFate> other;
  for (int i = 0; i < 200; ++i) other.push_back(injector.send_fate());
  EXPECT_NE(first, other);
}

TEST_F(FaultInjectorTest, InjectionRatesTrackProbabilities) {
  FaultConfig config;
  config.seed = 11;
  config.drop = 0.25;
  config.short_write = 0.25;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure_for_testing(config);

  int drops = 0;
  int shorts = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    switch (injector.send_fate()) {
      case FaultInjector::SendFate::Drop: ++drops; break;
      case FaultInjector::SendFate::ShortWrite: ++shorts; break;
      case FaultInjector::SendFate::Ok: break;
    }
  }
  // Loose 4-sigma bounds: deterministic seed, so this never actually flakes.
  EXPECT_GT(drops, trials / 5);
  EXPECT_LT(drops, trials * 3 / 10);
  EXPECT_GT(shorts, trials / 5);
  EXPECT_LT(shorts, trials * 3 / 10);
  EXPECT_EQ(injector.injected(), static_cast<std::uint64_t>(drops + shorts));
}

TEST_F(FaultInjectorTest, DropRecvCountsInjections) {
  FaultConfig config;
  config.seed = 3;
  config.drop = 1.0;  // every recv drops
  FaultInjector& injector = FaultInjector::instance();
  injector.configure_for_testing(config);
  EXPECT_TRUE(injector.drop_recv());
  EXPECT_TRUE(injector.drop_recv());
  EXPECT_EQ(injector.injected(), 2u);
}

}  // namespace
}  // namespace ecad::net
