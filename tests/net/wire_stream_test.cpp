// Protocol v3 streaming messages (ISSUE 5): randomized round-trips over
// EvalItemResult / EvalBatchDone, truncation and corruption rejection, and
// the frame-version rules that keep v1/v2 peers rejecting only what they
// cannot parse.
#include <gtest/gtest.h>

#include <cstring>

#include "net/wire.h"
#include "util/rng.h"

namespace ecad::net {
namespace {

evo::EvalResult random_result(util::Rng& rng) {
  evo::EvalResult result;
  double* fields[] = {&result.accuracy,         &result.outputs_per_second,
                      &result.latency_seconds,  &result.potential_gflops,
                      &result.effective_gflops, &result.hw_efficiency,
                      &result.power_watts,      &result.fmax_mhz,
                      &result.parameters,       &result.flops_per_sample,
                      &result.eval_seconds};
  for (double* field : fields) {
    const std::uint64_t pattern = rng();
    std::memcpy(field, &pattern, sizeof(double));
  }
  result.feasible = rng.next_bool(0.5);
  return result;
}

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

TEST(WireItemResult, RandomizedRoundTripIsBitExact) {
  util::Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    EvalItemResult item;
    item.batch_id = rng();
    item.index = static_cast<std::uint32_t>(rng.next_index(kMaxBatchItems));
    item.outcome.ok = rng.next_bool(0.7);
    if (item.outcome.ok) {
      item.outcome.result = random_result(rng);
    } else {
      item.outcome.error = "evaluation failed on trial " + std::to_string(trial);
    }

    WireWriter writer;
    write_eval_item_result(writer, item);
    WireReader reader(writer.bytes());
    const EvalItemResult decoded = read_eval_item_result(reader);
    reader.expect_end();

    EXPECT_EQ(decoded.batch_id, item.batch_id);
    EXPECT_EQ(decoded.index, item.index);
    EXPECT_EQ(decoded.outcome.ok, item.outcome.ok);
    if (item.outcome.ok) {
      EXPECT_EQ(bits_of(decoded.outcome.result.accuracy), bits_of(item.outcome.result.accuracy));
      EXPECT_EQ(bits_of(decoded.outcome.result.eval_seconds),
                bits_of(item.outcome.result.eval_seconds));
      EXPECT_EQ(decoded.outcome.result.feasible, item.outcome.result.feasible);
    } else {
      EXPECT_EQ(decoded.outcome.error, item.outcome.error);
    }
  }
}

TEST(WireItemResult, TruncationAlwaysThrows) {
  util::Rng rng(47);
  EvalItemResult item;
  item.batch_id = 5;
  item.index = 3;
  item.outcome.ok = true;
  item.outcome.result = random_result(rng);
  WireWriter writer;
  write_eval_item_result(writer, item);
  const auto& bytes = writer.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader reader(bytes.data(), cut);
    EXPECT_THROW(
        {
          EvalItemResult decoded = read_eval_item_result(reader);
          reader.expect_end();
          (void)decoded;
        },
        WireError)
        << "cut=" << cut;
  }
}

TEST(WireItemResult, HostileIndexIsRejected) {
  WireWriter writer;
  writer.put_u64(1);
  writer.put_u32(kMaxBatchItems);  // one past the last legal slot
  writer.put_u8(1);
  WireReader reader(writer.bytes());
  EXPECT_THROW(read_eval_item_result(reader), WireError);

  EvalItemResult item;
  item.index = kMaxBatchItems;
  WireWriter rejected;
  EXPECT_THROW(write_eval_item_result(rejected, item), WireError);
}

TEST(WireBatchDone, RoundTripAndHostileCount) {
  EvalBatchDone done;
  done.batch_id = 99;
  done.count = 17;
  WireWriter writer;
  write_eval_batch_done(writer, done);
  WireReader reader(writer.bytes());
  const EvalBatchDone decoded = read_eval_batch_done(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.batch_id, 99u);
  EXPECT_EQ(decoded.count, 17u);

  WireWriter hostile;
  hostile.put_u64(1);
  hostile.put_u32(kMaxBatchItems + 1);
  WireReader hostile_reader(hostile.bytes());
  EXPECT_THROW(read_eval_batch_done(hostile_reader), WireError);

  EvalBatchDone oversized;
  oversized.count = kMaxBatchItems + 1;
  WireWriter rejected;
  EXPECT_THROW(write_eval_batch_done(rejected, oversized), WireError);
}

TEST(WireBatchDone, TruncationAlwaysThrows) {
  EvalBatchDone done;
  done.batch_id = 7;
  done.count = 2;
  WireWriter writer;
  write_eval_batch_done(writer, done);
  const auto& bytes = writer.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader reader(bytes.data(), cut);
    EXPECT_THROW(
        {
          EvalBatchDone decoded = read_eval_batch_done(reader);
          reader.expect_end();
          (void)decoded;
        },
        WireError)
        << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Frame versioning
// ---------------------------------------------------------------------------

TEST(WireFrameVersion, StreamingFramesCarryVersion3) {
  for (MsgType type : {MsgType::EvalItemResult, MsgType::EvalBatchDone}) {
    const std::vector<std::uint8_t> frame = encode_frame(type, {});
    EXPECT_EQ(frame[4], 3) << to_string(type);  // version low byte
    EXPECT_EQ(frame[5], 0) << to_string(type);
    EXPECT_EQ(decode_frame_header(frame.data()).version, 3) << to_string(type);
  }
  // The v2 batch frames must NOT have drifted to v3: a v2-only peer keeps
  // parsing exactly the messages it always could.
  EXPECT_EQ(decode_frame_header(encode_frame(MsgType::EvalBatchRequest, {}).data()).version, 2);
  EXPECT_EQ(decode_frame_header(encode_frame(MsgType::EvalBatchResponse, {}).data()).version, 2);
}

TEST(WireFrameVersion, VersionBeyondV3IsRejected) {
  std::vector<std::uint8_t> frame = encode_frame(MsgType::Ping, {});
  frame[4] = static_cast<std::uint8_t>(kProtocolVersion + 1);
  EXPECT_THROW(decode_frame_header(frame.data()), WireError);
}

TEST(WireHello, V3TrailerRoundTrips) {
  WireWriter writer;
  write_hello_payload(writer, "ecad-master", 3);
  WireReader reader(writer.bytes());
  const HelloPayload hello = read_hello_payload(reader);
  EXPECT_EQ(hello.name, "ecad-master");
  EXPECT_EQ(hello.max_version, 3);
}

}  // namespace
}  // namespace ecad::net
