// Round-trip and hostile-input coverage for the search-service codecs
// (protocol v4): every write_X has its read_X exercised here, on both the
// happy path and truncated/corrupt payloads.
#include <gtest/gtest.h>

#include <vector>

#include "net/wire.h"

namespace ecad::net {
namespace {

evo::Candidate sample_candidate(std::size_t width, double fitness) {
  evo::Candidate candidate;
  candidate.genome.nna.hidden = {width, width / 2};
  candidate.genome.nna.activation = nn::Activation::ReLU;
  candidate.genome.nna.use_bias = true;
  candidate.genome.grid.rows = 8;
  candidate.genome.grid.cols = 16;
  candidate.genome.grid.vec_width = 4;
  candidate.genome.grid.interleave_m = 2;
  candidate.genome.grid.interleave_n = 32;
  candidate.result.accuracy = 0.5 + fitness / 10.0;
  candidate.result.outputs_per_second = 1e6 + fitness;
  candidate.result.eval_seconds = 0.25;
  candidate.result.feasible = true;
  candidate.fitness = fitness;
  return candidate;
}

SearchRecord sample_record() {
  SearchRecord record;
  record.history = {sample_candidate(64, 0.875), sample_candidate(128, 0.9375),
                    sample_candidate(32, 0.8125)};
  record.best = record.history[1];
  record.models_evaluated = 3;
  record.duplicates_skipped = 1;
  return record;
}

void expect_candidates_equal(const evo::Candidate& a, const evo::Candidate& b) {
  EXPECT_EQ(a.genome, b.genome);
  EXPECT_EQ(a.result.accuracy, b.result.accuracy);
  EXPECT_EQ(a.result.outputs_per_second, b.result.outputs_per_second);
  EXPECT_EQ(a.result.eval_seconds, b.result.eval_seconds);
  EXPECT_EQ(a.result.feasible, b.result.feasible);
  EXPECT_EQ(a.fitness, b.fitness);
}

TEST(WireSearch, CandidateRoundTrips) {
  const evo::Candidate candidate = sample_candidate(64, 0.875);
  WireWriter writer;
  write_candidate(writer, candidate);
  WireReader reader(writer.bytes());
  const evo::Candidate decoded = read_candidate(reader);
  reader.expect_end();
  expect_candidates_equal(decoded, candidate);
}

TEST(WireSearch, CandidateTruncatedThrows) {
  WireWriter writer;
  write_candidate(writer, sample_candidate(64, 0.875));
  std::vector<std::uint8_t> bytes = writer.bytes();
  bytes.resize(bytes.size() - 1);
  WireReader reader(bytes);
  EXPECT_THROW(read_candidate(reader), WireError);
}

TEST(WireSearch, SearchRecordRoundTrips) {
  const SearchRecord record = sample_record();
  WireWriter writer;
  write_search_record(writer, record);
  WireReader reader(writer.bytes());
  const SearchRecord decoded = read_search_record(reader);
  reader.expect_end();
  ASSERT_EQ(decoded.history.size(), record.history.size());
  for (std::size_t i = 0; i < record.history.size(); ++i) {
    expect_candidates_equal(decoded.history[i], record.history[i]);
  }
  expect_candidates_equal(decoded.best, record.best);
  EXPECT_EQ(decoded.models_evaluated, record.models_evaluated);
  EXPECT_EQ(decoded.duplicates_skipped, record.duplicates_skipped);
}

TEST(WireSearch, SearchRecordHostileCountThrows) {
  // A length prefix above kMaxRecordCandidates must be rejected before any
  // allocation, not trusted and looped over.
  WireWriter writer;
  writer.put_u32(kMaxRecordCandidates + 1);
  WireReader reader(writer.bytes());
  EXPECT_THROW(read_search_record(reader), WireError);
}

TEST(WireSearch, OversizedSearchRecordRefusesToEncode) {
  SearchRecord record;
  record.history.resize(kMaxRecordCandidates + 1);
  WireWriter writer;
  EXPECT_THROW(write_search_record(writer, record), WireError);
}

TEST(WireSearch, SubmitSearchRoundTrips) {
  SubmitSearch submit;
  submit.submit_id = 42;
  submit.request.seed = 11;
  submit.request.threads = 3;
  submit.request.fitness = "accuracy_x_throughput";
  submit.request.evolution.population_size = 6;
  submit.request.evolution.max_evaluations = 24;
  submit.request.evolution.batch_size = 3;
  submit.request.evolution.overlap_generations = true;
  submit.request.evolution.max_inflight_batches = 4;
  submit.request.space.search_hardware = false;
  WireWriter writer;
  write_submit_search(writer, submit);
  WireReader reader(writer.bytes());
  const SubmitSearch decoded = read_submit_search(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.submit_id, 42u);
  EXPECT_EQ(decoded.request.seed, 11u);
  EXPECT_EQ(decoded.request.threads, 3u);
  EXPECT_EQ(decoded.request.fitness, "accuracy_x_throughput");
  EXPECT_EQ(decoded.request.evolution.population_size, 6u);
  EXPECT_EQ(decoded.request.evolution.max_evaluations, 24u);
  EXPECT_EQ(decoded.request.evolution.batch_size, 3u);
  EXPECT_TRUE(decoded.request.evolution.overlap_generations);
  EXPECT_EQ(decoded.request.evolution.max_inflight_batches, 4u);
  EXPECT_FALSE(decoded.request.space.search_hardware);
  EXPECT_EQ(decoded.request.space.width_choices, submit.request.space.width_choices);
}

TEST(WireSearch, SearchAcceptedRoundTrips) {
  SearchAccepted accepted;
  accepted.submit_id = 7;
  accepted.search_id = 19;
  accepted.queue_position = 2;
  WireWriter writer;
  write_search_accepted(writer, accepted);
  WireReader reader(writer.bytes());
  const SearchAccepted decoded = read_search_accepted(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.submit_id, 7u);
  EXPECT_EQ(decoded.search_id, 19u);
  EXPECT_EQ(decoded.queue_position, 2u);
}

TEST(WireSearch, SearchProgressRoundTrips) {
  SearchProgress progress;
  progress.search_id = 19;
  progress.generation = 5;
  progress.models_evaluated = 21;
  progress.max_evaluations = 400;
  progress.pareto_front_size = 4;
  progress.best_fitness = 0.958145;
  WireWriter writer;
  write_search_progress(writer, progress);
  WireReader reader(writer.bytes());
  const SearchProgress decoded = read_search_progress(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.search_id, 19u);
  EXPECT_EQ(decoded.generation, 5u);
  EXPECT_EQ(decoded.models_evaluated, 21u);
  EXPECT_EQ(decoded.max_evaluations, 400u);
  EXPECT_EQ(decoded.pareto_front_size, 4u);
  EXPECT_EQ(decoded.best_fitness, 0.958145);
}

TEST(WireSearch, SearchDoneCompletedCarriesRecord) {
  SearchDone done;
  done.search_id = 19;
  done.status = SearchDone::Status::Completed;
  done.record = sample_record();
  WireWriter writer;
  write_search_done(writer, done);
  WireReader reader(writer.bytes());
  const SearchDone decoded = read_search_done(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.search_id, 19u);
  EXPECT_EQ(decoded.status, SearchDone::Status::Completed);
  ASSERT_EQ(decoded.record.history.size(), 3u);
  expect_candidates_equal(decoded.record.best, done.record.best);
  EXPECT_EQ(decoded.record.models_evaluated, 3u);
  EXPECT_TRUE(decoded.message.empty());
}

TEST(WireSearch, SearchDoneCanceledCarriesMessageOnly) {
  SearchDone done;
  done.search_id = 19;
  done.status = SearchDone::Status::Canceled;
  done.message = "daemon draining";
  WireWriter writer;
  write_search_done(writer, done);
  WireReader reader(writer.bytes());
  const SearchDone decoded = read_search_done(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.status, SearchDone::Status::Canceled);
  EXPECT_EQ(decoded.message, "daemon draining");
  EXPECT_TRUE(decoded.record.history.empty());
}

TEST(WireSearch, SearchDoneUnknownStatusThrows) {
  WireWriter writer;
  writer.put_u64(19);
  writer.put_u8(3);  // one past Status::Canceled
  writer.put_string("bogus");
  WireReader reader(writer.bytes());
  EXPECT_THROW(read_search_done(reader), WireError);
}

TEST(WireSearch, CancelSearchRoundTrips) {
  CancelSearch cancel;
  cancel.search_id = 19;
  WireWriter writer;
  write_cancel_search(writer, cancel);
  WireReader reader(writer.bytes());
  const CancelSearch decoded = read_cancel_search(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.search_id, 19u);
}

TEST(WireSearch, V4FramesCarryVersion4Headers) {
  EXPECT_EQ(frame_version_for(MsgType::SubmitSearch), 4);
  EXPECT_EQ(frame_version_for(MsgType::SearchAccepted), 4);
  EXPECT_EQ(frame_version_for(MsgType::SearchProgress), 4);
  EXPECT_EQ(frame_version_for(MsgType::SearchDone), 4);
  EXPECT_EQ(frame_version_for(MsgType::CancelSearch), 4);
  const std::vector<std::uint8_t> frame = encode_frame(MsgType::CancelSearch, {});
  const FrameHeader header = decode_frame_header(frame.data());
  EXPECT_EQ(header.version, 4);
  EXPECT_EQ(header.type, MsgType::CancelSearch);
}

}  // namespace
}  // namespace ecad::net
