// Fleet-cache persistence (`ecad_workerd --cache-file`): the snapshot file
// codec, LRU-order-preserving export/replay, and cold-start fallbacks.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "net/fleet_cache.h"
#include "util/snapshot_io.h"

namespace ecad::net {
namespace {

std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + "fleet_cache_" + stem + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + ".bin";
}

evo::EvalResult result_with(double accuracy) {
  evo::EvalResult result;
  result.accuracy = accuracy;
  result.outputs_per_second = 1000.0 * accuracy;
  result.power_watts = 12.5;
  result.feasible = accuracy > 0.1;
  return result;
}

TEST(FleetCacheFile, ExportIsLruFirstAndReplayRebuildsRecency) {
  FleetResultCache cache(kCacheEntryBytes * 8);
  cache.store(1, result_with(0.1));
  cache.store(2, result_with(0.2));
  cache.store(3, result_with(0.3));
  (void)cache.lookup(1);  // refresh: recency newest-first is now 1,3,2

  const auto entries = cache.export_entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, 2u);  // least recently used first
  EXPECT_EQ(entries[1].first, 3u);
  EXPECT_EQ(entries[2].first, 1u);

  // Replaying into a budget-2 cache must evict the LRU entry (2), exactly
  // as if the original cache had been capped.
  FleetResultCache smaller(kCacheEntryBytes * 2);
  for (const auto& [key, result] : entries) smaller.store(key, result);
  EXPECT_EQ(smaller.entries(), 2u);
  EXPECT_FALSE(smaller.lookup(2).has_value());
  EXPECT_TRUE(smaller.lookup(3).has_value());
  EXPECT_TRUE(smaller.lookup(1).has_value());
}

TEST(FleetCacheFile, SaveLoadRoundTripsEntriesAndResults) {
  const std::string path = temp_path("roundtrip");
  FleetResultCache cache(kCacheEntryBytes * 8);
  cache.store(0x0123456789abcdefull, result_with(0.875));
  cache.store(42, result_with(0.25));
  save_cache_file(path, cache);

  FleetResultCache reloaded(kCacheEntryBytes * 8);
  EXPECT_EQ(load_cache_file(path, reloaded), 2u);
  EXPECT_EQ(reloaded.entries(), 2u);
  const auto hit = reloaded.lookup(0x0123456789abcdefull);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->accuracy, 0.875);
  EXPECT_DOUBLE_EQ(hit->power_watts, 12.5);
  EXPECT_TRUE(hit->feasible);
  std::remove(path.c_str());
}

TEST(FleetCacheFile, SerializeIsAFixedPoint) {
  FleetResultCache cache(kCacheEntryBytes * 4);
  cache.store(7, result_with(0.5));
  cache.store(8, result_with(0.75));
  const std::vector<std::uint8_t> first = serialize_cache_entries(cache.export_entries());
  const std::vector<std::uint8_t> second =
      serialize_cache_entries(deserialize_cache_entries(first));
  EXPECT_EQ(first, second);
}

TEST(FleetCacheFile, EmptyCacheRoundTrips) {
  const std::string path = temp_path("empty");
  FleetResultCache cache(kCacheEntryBytes * 4);
  save_cache_file(path, cache);
  FleetResultCache reloaded(kCacheEntryBytes * 4);
  EXPECT_EQ(load_cache_file(path, reloaded), 0u);
  EXPECT_EQ(reloaded.entries(), 0u);
  std::remove(path.c_str());
}

TEST(FleetCacheFile, MalformedFilesRejectedNotCrashed) {
  FleetResultCache cache(kCacheEntryBytes * 4);
  EXPECT_THROW(load_cache_file(temp_path("missing"), cache), util::SnapshotError);

  EXPECT_THROW(deserialize_cache_entries({}), util::SnapshotError);

  FleetResultCache source(kCacheEntryBytes * 4);
  source.store(1, result_with(0.5));
  std::vector<std::uint8_t> bytes = serialize_cache_entries(source.export_entries());
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(deserialize_cache_entries(bad_magic), util::SnapshotError);

  std::vector<std::uint8_t> bad_version = bytes;
  bad_version[4] ^= 0xff;
  EXPECT_THROW(deserialize_cache_entries(bad_version), util::SnapshotError);

  std::vector<std::uint8_t> truncated = bytes;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(deserialize_cache_entries(truncated), util::SnapshotError);

  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(deserialize_cache_entries(trailing), util::SnapshotError);
}

TEST(FleetCacheFile, DisabledCacheExportsNothing) {
  FleetResultCache disabled(0);
  disabled.store(1, result_with(0.5));
  EXPECT_TRUE(disabled.export_entries().empty());
}

}  // namespace
}  // namespace ecad::net
