// End-to-end tests for the distributed evaluation service: WorkerServer
// daemons on loopback + RemoteWorker as the Master's evaluation backend.
// Covers the ISSUE 3 acceptance criteria in-process: distributed == local
// bit-for-bit, graceful degradation when a worker dies mid-search, and
// fallback to local evaluation when nothing is reachable.
#include "net/remote_worker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "core/master.h"
#include "net/worker_server.h"

namespace ecad::net {
namespace {

// Deterministic closed-form worker; an optional delay stretches searches so
// tests can interfere mid-flight.
class AnalyticWorker : public core::Worker {
 public:
  explicit AnalyticWorker(int delay_ms = 0) : delay_ms_(delay_ms) {}

  std::string name() const override { return "analytic"; }

  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    if (delay_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    }
    evo::EvalResult result;
    double capacity = 0.0;
    for (std::size_t width : genome.nna.hidden) capacity += static_cast<double>(width);
    result.accuracy = 0.5 + 0.08 * static_cast<double>(genome.nna.hidden.size()) +
                      capacity / 16384.0;
    result.outputs_per_second = 1e6 / static_cast<double>(genome.grid.dsp_usage());
    result.parameters = capacity;
    return result;
  }

 private:
  int delay_ms_;
};

class ThrowingWorker final : public core::Worker {
 public:
  std::string name() const override { return "throwing"; }
  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    throw std::runtime_error("cannot evaluate " + genome.key());
  }
};

evo::Genome test_genome() {
  evo::Genome genome;
  genome.nna.hidden = {32, 16};
  return genome;
}

bool results_identical(const evo::EvalResult& a, const evo::EvalResult& b) {
  // Bit-exact on everything except eval_seconds (wall clock, set engine-side).
  return std::memcmp(&a.accuracy, &b.accuracy, sizeof(double)) == 0 &&
         a.outputs_per_second == b.outputs_per_second && a.parameters == b.parameters &&
         a.feasible == b.feasible;
}

TEST(WorkerServer, EvaluatesOverLoopback) {
  const AnalyticWorker worker;
  WorkerServer server(worker);
  server.start();
  ASSERT_GT(server.port(), 0);

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  const RemoteWorker remote(options);

  const evo::Genome genome = test_genome();
  const evo::EvalResult via_network = remote.evaluate(genome);
  const evo::EvalResult direct = worker.evaluate(genome);
  EXPECT_TRUE(results_identical(via_network, direct));
  EXPECT_EQ(remote.remote_evaluations(), 1u);
  EXPECT_EQ(server.requests_served(), 1u);
  server.stop();
}

TEST(WorkerServer, ServesConcurrentRequestsFromManyThreads) {
  const AnalyticWorker worker(/*delay_ms=*/2);
  WorkerServer server(worker);
  server.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  const RemoteWorker remote(options);
  const AnalyticWorker oracle;

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5; ++i) {
        evo::Genome genome;
        genome.nna.hidden = {static_cast<std::size_t>(8 + 8 * t), static_cast<std::size_t>(4 + i)};
        const evo::EvalResult remote_result = remote.evaluate(genome);
        if (!results_identical(remote_result, oracle.evaluate(genome))) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.requests_served(), 40u);
  server.stop();
}

TEST(WorkerServer, PingAndRemoteExceptionPropagation) {
  const ThrowingWorker worker;
  WorkerServer server(worker);
  server.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  const RemoteWorker remote(options);
  EXPECT_EQ(remote.ping_all(), 1u);

  // A *remote* evaluation failure is deterministic: no endpoint retry, the
  // remote message surfaces locally.
  try {
    remote.evaluate(test_genome());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::strstr(e.what(), "remote evaluation failed"), nullptr);
    EXPECT_NE(std::strstr(e.what(), "cannot evaluate"), nullptr);
  }
  server.stop();
}

TEST(RemoteWorker, DistributedSearchMatchesLocalBitForBit) {
  const AnalyticWorker worker;
  WorkerServer server_a(worker);
  WorkerServer server_b(worker);
  server_a.start();
  server_b.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server_a.port()}, {"127.0.0.1", server_b.port()}};
  const RemoteWorker remote(options);

  core::SearchRequest request;
  request.seed = 5;
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = 30;
  request.evolution.batch_size = 3;
  request.threads = 4;

  core::Master master;
  const evo::EvolutionResult distributed = master.search(remote, request);
  const evo::EvolutionResult local = master.search(worker, request);

  // Both daemons actually participated.
  EXPECT_GT(server_a.requests_served(), 0u);
  EXPECT_GT(server_b.requests_served(), 0u);
  EXPECT_EQ(server_a.requests_served() + server_b.requests_served(),
            distributed.stats.models_evaluated);

  // The searches are the same search: identical history, winner, fitness.
  ASSERT_EQ(distributed.history.size(), local.history.size());
  for (std::size_t i = 0; i < local.history.size(); ++i) {
    EXPECT_EQ(distributed.history[i].genome, local.history[i].genome) << "index " << i;
    EXPECT_EQ(distributed.history[i].fitness, local.history[i].fitness) << "index " << i;
    EXPECT_TRUE(results_identical(distributed.history[i].result, local.history[i].result))
        << "index " << i;
  }
  EXPECT_EQ(distributed.best.genome, local.best.genome);
  EXPECT_EQ(distributed.best.fitness, local.best.fitness);

  server_a.stop();
  server_b.stop();
}

TEST(RemoteWorker, SurvivesWorkerDeathMidSearch) {
  const AnalyticWorker worker(/*delay_ms=*/3);
  WorkerServer server_a(worker);
  WorkerServer server_b(worker);
  server_a.start();
  server_b.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server_a.port()}, {"127.0.0.1", server_b.port()}};
  options.endpoint_cooldown_ms = 200;
  const RemoteWorker remote(options);

  core::SearchRequest request;
  request.seed = 9;
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = 60;
  request.evolution.batch_size = 3;
  request.threads = 4;

  // Kill one daemon while the search is in flight.
  std::thread assassin([&server_b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server_b.stop();
  });

  core::Master master;
  const evo::EvolutionResult distributed = master.search(remote, request);
  assassin.join();

  // The search completed on the surviving worker and still matches local.
  const evo::EvolutionResult local = master.search(worker, request);
  ASSERT_EQ(distributed.history.size(), local.history.size());
  EXPECT_EQ(distributed.best.genome, local.best.genome);
  EXPECT_EQ(distributed.best.fitness, local.best.fitness);
  EXPECT_EQ(distributed.stats.models_evaluated, local.stats.models_evaluated);

  server_a.stop();
}

TEST(RemoteWorker, FallsBackToLocalWhenNothingIsReachable) {
  // Grab a port that is guaranteed dead: bind, read, close.
  std::uint16_t dead_port = 0;
  {
    Listener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }

  const AnalyticWorker local_worker;
  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", dead_port}};
  options.connect_timeout_ms = 200;
  options.fallback = &local_worker;
  const RemoteWorker remote(options);

  const evo::Genome genome = test_genome();
  const evo::EvalResult result = remote.evaluate(genome);
  EXPECT_TRUE(results_identical(result, local_worker.evaluate(genome)));
  EXPECT_EQ(remote.fallback_evaluations(), 1u);
  EXPECT_EQ(remote.remote_evaluations(), 0u);
}

TEST(RemoteWorker, ThrowsWithoutFallbackWhenUnreachable) {
  std::uint16_t dead_port = 0;
  {
    Listener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }
  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", dead_port}};
  options.connect_timeout_ms = 200;
  const RemoteWorker remote(options);
  EXPECT_THROW(remote.evaluate(test_genome()), NetError);
  EXPECT_EQ(remote.ping_all(), 0u);
}

TEST(RemoteWorker, RequiresAtLeastOneEndpoint) {
  RemoteWorkerOptions options;
  EXPECT_THROW(RemoteWorker remote(std::move(options)), std::invalid_argument);
}

TEST(WorkerServer, PeerShutdownFrameStopsServerAndTeardownIsClean) {
  const AnalyticWorker worker;
  auto server = std::make_unique<WorkerServer>(worker);
  server->start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server->port()}};
  const RemoteWorker remote(options);
  remote.shutdown_all();

  // The event loop exits on its own once the Shutdown frame lands.
  for (int i = 0; i < 200 && server->running(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(server->running());
  // Regression: stop()/destruction after a self-initiated loop exit must
  // still join the loop thread — skipping it terminates the process.
  server->stop();
  server.reset();
}

TEST(WorkerServer, StopIsIdempotentAndRestartable) {
  const AnalyticWorker worker;
  WorkerServer server(worker);
  server.start();
  const std::uint16_t first_port = server.port();
  EXPECT_GT(first_port, 0);
  server.stop();
  server.stop();  // idempotent

  // A fresh server can bind again immediately (SO_REUSEADDR).
  WorkerServer second(worker, {"127.0.0.1", first_port, 0, 50});
  second.start();
  EXPECT_EQ(second.port(), first_port);
  second.stop();
}

}  // namespace
}  // namespace ecad::net
