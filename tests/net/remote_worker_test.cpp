// End-to-end tests for the distributed evaluation service: WorkerServer
// daemons on loopback + RemoteWorker as the Master's evaluation backend.
// Covers the ISSUE 3 acceptance criteria in-process: distributed == local
// bit-for-bit, graceful degradation when a worker dies mid-search, and
// fallback to local evaluation when nothing is reachable.
#include "net/remote_worker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>

#include "core/master.h"
#include "net/worker_server.h"
#include "util/thread_pool.h"

namespace ecad::net {
namespace {

// Deterministic closed-form worker; an optional delay stretches searches so
// tests can interfere mid-flight.
class AnalyticWorker : public core::Worker {
 public:
  explicit AnalyticWorker(int delay_ms = 0) : delay_ms_(delay_ms) {}

  std::string name() const override { return "analytic"; }

  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    if (delay_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    }
    evo::EvalResult result;
    double capacity = 0.0;
    for (std::size_t width : genome.nna.hidden) capacity += static_cast<double>(width);
    result.accuracy = 0.5 + 0.08 * static_cast<double>(genome.nna.hidden.size()) +
                      capacity / 16384.0;
    result.outputs_per_second = 1e6 / static_cast<double>(genome.grid.dsp_usage());
    result.parameters = capacity;
    return result;
  }

 private:
  int delay_ms_;
};

class ThrowingWorker final : public core::Worker {
 public:
  std::string name() const override { return "throwing"; }
  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    throw std::runtime_error("cannot evaluate " + genome.key());
  }
};

evo::Genome test_genome() {
  evo::Genome genome;
  genome.nna.hidden = {32, 16};
  return genome;
}

bool results_identical(const evo::EvalResult& a, const evo::EvalResult& b) {
  // Bit-exact on everything except eval_seconds (wall clock, set engine-side).
  return std::memcmp(&a.accuracy, &b.accuracy, sizeof(double)) == 0 &&
         a.outputs_per_second == b.outputs_per_second && a.parameters == b.parameters &&
         a.feasible == b.feasible;
}

TEST(WorkerServer, EvaluatesOverLoopback) {
  const AnalyticWorker worker;
  WorkerServer server(worker);
  server.start();
  ASSERT_GT(server.port(), 0);

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  const RemoteWorker remote(options);

  const evo::Genome genome = test_genome();
  const evo::EvalResult via_network = remote.evaluate(genome);
  const evo::EvalResult direct = worker.evaluate(genome);
  EXPECT_TRUE(results_identical(via_network, direct));
  EXPECT_EQ(remote.remote_evaluations(), 1u);
  EXPECT_EQ(server.requests_served(), 1u);
  server.stop();
}

TEST(WorkerServer, ServesConcurrentRequestsFromManyThreads) {
  const AnalyticWorker worker(/*delay_ms=*/2);
  WorkerServer server(worker);
  server.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  const RemoteWorker remote(options);
  const AnalyticWorker oracle;

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5; ++i) {
        evo::Genome genome;
        genome.nna.hidden = {static_cast<std::size_t>(8 + 8 * t), static_cast<std::size_t>(4 + i)};
        const evo::EvalResult remote_result = remote.evaluate(genome);
        if (!results_identical(remote_result, oracle.evaluate(genome))) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.requests_served(), 40u);
  server.stop();
}

TEST(WorkerServer, PingAndRemoteExceptionPropagation) {
  const ThrowingWorker worker;
  WorkerServer server(worker);
  server.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  const RemoteWorker remote(options);
  EXPECT_EQ(remote.ping_all(), 1u);

  // A *remote* evaluation failure is deterministic: no endpoint retry, the
  // remote message surfaces locally.
  try {
    remote.evaluate(test_genome());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::strstr(e.what(), "remote evaluation failed"), nullptr);
    EXPECT_NE(std::strstr(e.what(), "cannot evaluate"), nullptr);
  }
  server.stop();
}

TEST(RemoteWorker, DistributedSearchMatchesLocalBitForBit) {
  const AnalyticWorker worker;
  WorkerServer server_a(worker);
  WorkerServer server_b(worker);
  server_a.start();
  server_b.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server_a.port()}, {"127.0.0.1", server_b.port()}};
  const RemoteWorker remote(options);

  core::SearchRequest request;
  request.seed = 5;
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = 30;
  request.evolution.batch_size = 3;
  request.threads = 4;

  core::Master master;
  const evo::EvolutionResult distributed = master.search(remote, request);
  const evo::EvolutionResult local = master.search(worker, request);

  // Both daemons actually participated.
  EXPECT_GT(server_a.requests_served(), 0u);
  EXPECT_GT(server_b.requests_served(), 0u);
  EXPECT_EQ(server_a.requests_served() + server_b.requests_served(),
            distributed.stats.models_evaluated);

  // The searches are the same search: identical history, winner, fitness.
  ASSERT_EQ(distributed.history.size(), local.history.size());
  for (std::size_t i = 0; i < local.history.size(); ++i) {
    EXPECT_EQ(distributed.history[i].genome, local.history[i].genome) << "index " << i;
    EXPECT_EQ(distributed.history[i].fitness, local.history[i].fitness) << "index " << i;
    EXPECT_TRUE(results_identical(distributed.history[i].result, local.history[i].result))
        << "index " << i;
  }
  EXPECT_EQ(distributed.best.genome, local.best.genome);
  EXPECT_EQ(distributed.best.fitness, local.best.fitness);

  server_a.stop();
  server_b.stop();
}

TEST(RemoteWorker, SurvivesWorkerDeathMidSearch) {
  const AnalyticWorker worker(/*delay_ms=*/3);
  WorkerServer server_a(worker);
  WorkerServer server_b(worker);
  server_a.start();
  server_b.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server_a.port()}, {"127.0.0.1", server_b.port()}};
  options.endpoint_cooldown_ms = 200;
  const RemoteWorker remote(options);

  core::SearchRequest request;
  request.seed = 9;
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = 60;
  request.evolution.batch_size = 3;
  request.threads = 4;

  // Kill one daemon while the search is in flight.
  std::thread assassin([&server_b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server_b.stop();
  });

  core::Master master;
  const evo::EvolutionResult distributed = master.search(remote, request);
  assassin.join();

  // The search completed on the surviving worker and still matches local.
  const evo::EvolutionResult local = master.search(worker, request);
  ASSERT_EQ(distributed.history.size(), local.history.size());
  EXPECT_EQ(distributed.best.genome, local.best.genome);
  EXPECT_EQ(distributed.best.fitness, local.best.fitness);
  EXPECT_EQ(distributed.stats.models_evaluated, local.stats.models_evaluated);

  server_a.stop();
}

TEST(RemoteWorker, FallsBackToLocalWhenNothingIsReachable) {
  // Grab a port that is guaranteed dead: bind, read, close.
  std::uint16_t dead_port = 0;
  {
    Listener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }

  const AnalyticWorker local_worker;
  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", dead_port}};
  options.connect_timeout_ms = 200;
  options.fallback = &local_worker;
  const RemoteWorker remote(options);

  const evo::Genome genome = test_genome();
  const evo::EvalResult result = remote.evaluate(genome);
  EXPECT_TRUE(results_identical(result, local_worker.evaluate(genome)));
  EXPECT_EQ(remote.fallback_evaluations(), 1u);
  EXPECT_EQ(remote.remote_evaluations(), 0u);
}

TEST(RemoteWorker, ThrowsWithoutFallbackWhenUnreachable) {
  std::uint16_t dead_port = 0;
  {
    Listener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }
  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", dead_port}};
  options.connect_timeout_ms = 200;
  const RemoteWorker remote(options);
  EXPECT_THROW(remote.evaluate(test_genome()), NetError);
  EXPECT_EQ(remote.ping_all(), 0u);
}

TEST(RemoteWorker, RequiresAtLeastOneEndpoint) {
  RemoteWorkerOptions options;
  EXPECT_THROW(RemoteWorker remote(std::move(options)), std::invalid_argument);
}

TEST(WorkerServer, PeerShutdownFrameStopsServerAndTeardownIsClean) {
  const AnalyticWorker worker;
  auto server = std::make_unique<WorkerServer>(worker);
  server->start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server->port()}};
  const RemoteWorker remote(options);
  remote.shutdown_all();

  // The event loop exits on its own once the Shutdown frame lands.
  for (int i = 0; i < 200 && server->running(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(server->running());
  // Regression: stop()/destruction after a self-initiated loop exit must
  // still join the loop thread — skipping it terminates the process.
  server->stop();
  server.reset();
}

// ---------------------------------------------------------------------------
// Batched evaluation (protocol v2)
// ---------------------------------------------------------------------------

TEST(RemoteWorkerBatch, BatchOutcomesMatchOracleAndUseBatchFrames) {
  const AnalyticWorker worker;
  WorkerServer server_a(worker);
  WorkerServer server_b(worker);
  server_a.start();
  server_b.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server_a.port()}, {"127.0.0.1", server_b.port()}};
  const RemoteWorker remote(options);
  util::ThreadPool pool(4);

  std::vector<evo::Genome> genomes;
  for (std::size_t i = 0; i < 12; ++i) {
    evo::Genome genome;
    genome.nna.hidden = {16 + 8 * i, 8};
    genomes.push_back(genome);
  }
  const std::vector<evo::EvalOutcome> outcomes = remote.evaluate_batch(genomes, pool);

  ASSERT_EQ(outcomes.size(), genomes.size());
  const AnalyticWorker oracle;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << "item " << i << ": " << outcomes[i].error;
    EXPECT_TRUE(results_identical(outcomes[i].result, oracle.evaluate(genomes[i]))) << "item " << i;
  }
  // The 12 items travelled in a handful of shard frames (the completion-
  // driven scheduler keeps several small shards in flight), never 12
  // per-genome round-trips; the reserved cold-start shards guarantee both
  // endpoints took a share.
  EXPECT_EQ(remote.remote_evaluations(), genomes.size());
  EXPECT_GE(remote.batches_dispatched(), 2u);
  EXPECT_LT(remote.batches_dispatched(), genomes.size());
  // Default protocol is v3: every outcome arrived as a streamed item frame.
  EXPECT_EQ(remote.streamed_items(), genomes.size());
  EXPECT_GT(server_a.requests_served(), 0u);
  EXPECT_GT(server_b.requests_served(), 0u);
  EXPECT_EQ(server_a.requests_served() + server_b.requests_served(), genomes.size());

  server_a.stop();
  server_b.stop();
}

TEST(RemoteWorkerBatch, PoisonedGenomeFailsItsSlotNotTheBatch) {
  // A worker that throws on genomes with an empty hidden list.
  class PartiallyThrowingWorker final : public core::Worker {
   public:
    std::string name() const override { return "partial"; }
    evo::EvalResult evaluate(const evo::Genome& genome) const override {
      if (genome.nna.hidden.empty()) {
        throw std::runtime_error("cannot evaluate " + genome.key());
      }
      evo::EvalResult result;
      result.accuracy = 0.5 + 0.001 * static_cast<double>(genome.nna.hidden[0]);
      return result;
    }
  };
  const PartiallyThrowingWorker worker;
  WorkerServer server(worker);
  server.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  const RemoteWorker remote(options);
  util::ThreadPool pool(2);

  std::vector<evo::Genome> genomes(3);
  genomes[0].nna.hidden = {8};
  genomes[1].nna.hidden = {};  // poisoned
  genomes[2].nna.hidden = {16};
  const std::vector<evo::EvalOutcome> outcomes = remote.evaluate_batch(genomes, pool);

  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_NE(outcomes[1].error.find("remote evaluation failed"), std::string::npos);
  EXPECT_NE(outcomes[1].error.find("cannot evaluate"), std::string::npos);
  EXPECT_TRUE(outcomes[2].ok);
  server.stop();
}

TEST(RemoteWorkerBatch, EndpointDeathMidBatchReshardsWithoutLossOrDuplication) {
  const AnalyticWorker worker(/*delay_ms=*/15);
  WorkerServer server_a(worker);
  WorkerServer server_b(worker);
  server_a.start();
  server_b.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server_a.port()}, {"127.0.0.1", server_b.port()}};
  options.heartbeat_interval_ms = 0;  // keep the dead endpoint dead for this test
  options.endpoint_cooldown_ms = 60000;
  const RemoteWorker remote(options);
  util::ThreadPool pool(4);

  std::vector<evo::Genome> genomes;
  for (std::size_t i = 0; i < 10; ++i) {
    evo::Genome genome;
    genome.nna.hidden = {8 + 4 * i};
    genomes.push_back(genome);
  }

  // Kill endpoint B while its shard is almost certainly still evaluating.
  std::thread assassin([&server_b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server_b.stop();
  });
  const std::vector<evo::EvalOutcome> outcomes = remote.evaluate_batch(genomes, pool);
  assassin.join();

  // Every slot settled exactly once with the oracle value: B's unfinished
  // share was re-sharded onto A, nothing was lost or answered twice.
  ASSERT_EQ(outcomes.size(), genomes.size());
  const AnalyticWorker oracle;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << "item " << i << ": " << outcomes[i].error;
    EXPECT_TRUE(results_identical(outcomes[i].result, oracle.evaluate(genomes[i]))) << "item " << i;
  }
  EXPECT_EQ(remote.remote_evaluations(), genomes.size());
  server_a.stop();
}

TEST(RemoteWorkerBatch, FallsBackToLocalWhenNothingIsReachable) {
  std::uint16_t dead_port = 0;
  {
    Listener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }
  const AnalyticWorker local_worker;
  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", dead_port}};
  options.connect_timeout_ms = 200;
  options.fallback = &local_worker;
  const RemoteWorker remote(options);
  util::ThreadPool pool(2);

  std::vector<evo::Genome> genomes(4);
  for (std::size_t i = 0; i < genomes.size(); ++i) genomes[i].nna.hidden = {8 + i};
  const std::vector<evo::EvalOutcome> outcomes = remote.evaluate_batch(genomes, pool);
  ASSERT_EQ(outcomes.size(), genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok);
    EXPECT_TRUE(results_identical(outcomes[i].result, local_worker.evaluate(genomes[i])));
  }
  EXPECT_EQ(remote.fallback_evaluations(), genomes.size());
  EXPECT_EQ(remote.remote_evaluations(), 0u);
}

// ---------------------------------------------------------------------------
// Streaming (protocol v3)
// ---------------------------------------------------------------------------

// A worker whose first-listed genome shape is slow: shard-mates behind it
// must stream back ahead of it on a v3 connection.
class HeterogeneousWorker final : public core::Worker {
 public:
  std::string name() const override { return "hetero"; }
  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    // hidden[0] == 7 marks the injected slow genome.
    const bool slow = !genome.nna.hidden.empty() && genome.nna.hidden[0] == 7;
    std::this_thread::sleep_for(std::chrono::milliseconds(slow ? 120 : 1));
    evo::EvalResult result;
    result.accuracy = 0.5 + 0.001 * static_cast<double>(genome.nna.hidden.empty()
                                                            ? 0
                                                            : genome.nna.hidden[0]);
    return result;
  }
};

TEST(StreamingV3, SlowGenomeDoesNotBlockShardMatesAndFramesArriveOutOfOrder) {
  const HeterogeneousWorker worker;
  WorkerServerOptions server_options;
  server_options.threads = 4;  // items must be able to overtake the slow one
  WorkerServer server(worker, server_options);
  server.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  options.streams_per_endpoint = 1;  // one shard carries the whole batch
  options.max_shard_items = 8;
  const RemoteWorker remote(options);
  util::ThreadPool pool(2);

  // Slot 0 sleeps 120ms, slots 1..3 finish in ~1ms: their item frames arrive
  // first, so the stream is consumed out of order by construction.
  std::vector<evo::Genome> genomes(4);
  genomes[0].nna.hidden = {7};
  genomes[1].nna.hidden = {16};
  genomes[2].nna.hidden = {24};
  genomes[3].nna.hidden = {32};
  const std::vector<evo::EvalOutcome> outcomes = remote.evaluate_batch(genomes, pool);

  const HeterogeneousWorker oracle;
  ASSERT_EQ(outcomes.size(), genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << "item " << i << ": " << outcomes[i].error;
    EXPECT_TRUE(results_identical(outcomes[i].result, oracle.evaluate(genomes[i]))) << "item " << i;
  }
  EXPECT_EQ(remote.streamed_items(), genomes.size());
  EXPECT_GE(remote.out_of_order_items(), 1u);
  EXPECT_EQ(remote.batches_dispatched(), 1u);
  server.stop();
}

TEST(StreamingV3, V2PinnedDaemonDegradesV3MasterToBatchResponses) {
  const AnalyticWorker worker;
  WorkerServerOptions server_options;
  server_options.max_protocol = 2;  // the daemon refuses to stream
  WorkerServer server(worker, server_options);
  server.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  const RemoteWorker remote(options);  // offers v3
  util::ThreadPool pool(2);

  std::vector<evo::Genome> genomes(6);
  for (std::size_t i = 0; i < genomes.size(); ++i) genomes[i].nna.hidden = {8 + 2 * i};
  const std::vector<evo::EvalOutcome> outcomes = remote.evaluate_batch(genomes, pool);

  const AnalyticWorker oracle;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_TRUE(results_identical(outcomes[i].result, oracle.evaluate(genomes[i])));
  }
  EXPECT_GE(remote.batches_dispatched(), 1u);
  EXPECT_EQ(remote.streamed_items(), 0u);
  EXPECT_EQ(server.requests_served(), genomes.size());
  server.stop();
}

TEST(StreamingV3, PinnedV2MasterGetsNoItemFrames) {
  const AnalyticWorker worker;
  WorkerServer server(worker);
  server.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  options.max_protocol = 2;  // the ISSUE 5 escape hatch: restore v2 exactly
  const RemoteWorker remote(options);
  util::ThreadPool pool(2);

  std::vector<evo::Genome> genomes(5);
  for (std::size_t i = 0; i < genomes.size(); ++i) genomes[i].nna.hidden = {8 + 4 * i};
  const std::vector<evo::EvalOutcome> outcomes = remote.evaluate_batch(genomes, pool);

  const AnalyticWorker oracle;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_TRUE(results_identical(outcomes[i].result, oracle.evaluate(genomes[i])));
  }
  // Batch frames yes, streamed item frames no: the wire spoke v2.
  EXPECT_GE(remote.batches_dispatched(), 1u);
  EXPECT_EQ(remote.streamed_items(), 0u);
  server.stop();
}

// The ISSUE 5 property: one seeded search run three ways — v3 streaming,
// v2 single-response batches, and fully local — must be the *same search*,
// bit for bit.  Streaming only changes when results travel, never what they
// are or how the engine consumes them.
TEST(StreamingV3, SearchResultsBitIdenticalAcrossV3V2AndLocal) {
  const AnalyticWorker worker;
  WorkerServer server_a(worker);
  WorkerServer server_b(worker);
  server_a.start();
  server_b.start();

  core::SearchRequest request;
  request.seed = 17;
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = 36;
  request.evolution.batch_size = 4;
  request.threads = 4;
  core::Master master;

  const auto run_remote = [&](std::uint16_t max_protocol) {
    RemoteWorkerOptions options;
    options.endpoints = {{"127.0.0.1", server_a.port()}, {"127.0.0.1", server_b.port()}};
    options.max_protocol = max_protocol;
    const RemoteWorker remote(options);
    return master.search(remote, request);
  };

  const evo::EvolutionResult streaming = run_remote(3);
  const evo::EvolutionResult batched = run_remote(2);
  const evo::EvolutionResult local = master.search(worker, request);

  ASSERT_EQ(streaming.history.size(), local.history.size());
  ASSERT_EQ(batched.history.size(), local.history.size());
  for (std::size_t i = 0; i < local.history.size(); ++i) {
    EXPECT_EQ(streaming.history[i].genome, local.history[i].genome) << "index " << i;
    EXPECT_EQ(streaming.history[i].fitness, local.history[i].fitness) << "index " << i;
    EXPECT_TRUE(results_identical(streaming.history[i].result, local.history[i].result))
        << "index " << i;
    EXPECT_EQ(batched.history[i].genome, local.history[i].genome) << "index " << i;
    EXPECT_EQ(batched.history[i].fitness, local.history[i].fitness) << "index " << i;
    EXPECT_TRUE(results_identical(batched.history[i].result, local.history[i].result))
        << "index " << i;
  }
  EXPECT_EQ(streaming.best.genome, local.best.genome);
  EXPECT_EQ(batched.best.genome, local.best.genome);
  EXPECT_EQ(streaming.best.fitness, local.best.fitness);

  server_a.stop();
  server_b.stop();
}

TEST(StreamingV3, MidStreamDeathLosesOnlyUnansweredItems) {
  const AnalyticWorker worker(/*delay_ms=*/15);
  WorkerServerOptions options_a;
  options_a.threads = 2;
  WorkerServer server_a(worker, options_a);
  WorkerServerOptions options_b;
  options_b.threads = 2;
  WorkerServer server_b(worker, options_b);
  server_a.start();
  server_b.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server_a.port()}, {"127.0.0.1", server_b.port()}};
  options.heartbeat_interval_ms = 0;  // keep the dead endpoint dead
  options.endpoint_cooldown_ms = 60000;
  const RemoteWorker remote(options);
  util::ThreadPool pool(4);

  std::vector<evo::Genome> genomes;
  for (std::size_t i = 0; i < 12; ++i) {
    evo::Genome genome;
    genome.nna.hidden = {8 + 4 * i};
    genomes.push_back(genome);
  }

  std::thread assassin([&server_b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    server_b.stop();
  });
  const std::vector<evo::EvalOutcome> outcomes = remote.evaluate_batch(genomes, pool);
  assassin.join();

  // Every slot settled exactly once with the oracle value; B's unanswered
  // items were requeued onto A without loss or duplication.
  ASSERT_EQ(outcomes.size(), genomes.size());
  const AnalyticWorker oracle;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << "item " << i << ": " << outcomes[i].error;
    EXPECT_TRUE(results_identical(outcomes[i].result, oracle.evaluate(genomes[i]))) << "item " << i;
  }
  EXPECT_EQ(remote.remote_evaluations(), genomes.size());
  server_a.stop();
}

// ---------------------------------------------------------------------------
// Version negotiation
// ---------------------------------------------------------------------------

TEST(ProtocolNegotiation, V2MasterInteroperatesWithV1PinnedWorker) {
  const AnalyticWorker worker;
  WorkerServerOptions server_options;
  server_options.max_protocol = 1;  // the daemon refuses to speak v2
  WorkerServer server(worker, server_options);
  server.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  const RemoteWorker remote(options);
  util::ThreadPool pool(2);

  std::vector<evo::Genome> genomes(5);
  for (std::size_t i = 0; i < genomes.size(); ++i) genomes[i].nna.hidden = {8 + 8 * i};
  const std::vector<evo::EvalOutcome> outcomes = remote.evaluate_batch(genomes, pool);

  const AnalyticWorker oracle;
  ASSERT_EQ(outcomes.size(), genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_TRUE(results_identical(outcomes[i].result, oracle.evaluate(genomes[i])));
  }
  // The shard degraded to per-genome EvalRequest frames: no batch frames on
  // the wire, yet every item was still served by the v1 daemon.
  EXPECT_EQ(remote.batches_dispatched(), 0u);
  EXPECT_EQ(server.requests_served(), genomes.size());
  server.stop();
}

TEST(ProtocolNegotiation, V1PinnedMasterAgainstV2Worker) {
  const AnalyticWorker worker;
  WorkerServer server(worker);
  server.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  options.max_protocol = 1;
  const RemoteWorker remote(options);
  util::ThreadPool pool(2);

  std::vector<evo::Genome> genomes(3);
  for (std::size_t i = 0; i < genomes.size(); ++i) genomes[i].nna.hidden = {8 + i};
  const std::vector<evo::EvalOutcome> outcomes = remote.evaluate_batch(genomes, pool);
  for (const evo::EvalOutcome& outcome : outcomes) ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(remote.batches_dispatched(), 0u);
  server.stop();
}

// A faithful imitation of the PR-3 era daemon: parses Hello as exactly a
// string and drops the connection on trailing bytes, answers EvalRequest
// only.  Exercises the v2 master's downgrade retry against a peer that
// predates version negotiation entirely.
class LegacyV1Server {
 public:
  explicit LegacyV1Server(const core::Worker& worker)
      : worker_(worker), listener_("127.0.0.1", 0) {
    thread_ = std::thread([this] { serve(); });
  }
  ~LegacyV1Server() {
    // Join before the listener dies: serve() polls stop_ every accept
    // timeout, and closing the fd under a live accept() would race.
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }
  std::uint16_t port() const { return listener_.port(); }
  std::size_t dropped_hellos() const { return dropped_hellos_.load(); }
  std::size_t served() const { return served_.load(); }

 private:
  void serve() {
    while (!stop_.load()) {
      std::optional<Socket> accepted;
      try {
        accepted = listener_.accept(50);
      } catch (const NetError&) {
        return;  // listener closed
      }
      if (!accepted) continue;
      handle(*accepted);
    }
  }

  void handle(Socket& socket) {
    try {
      for (;;) {
        std::uint8_t header[kFrameHeaderBytes];
        socket.recv_exact(header, sizeof(header), 2000);
        const FrameHeader decoded = decode_frame_header(header);
        // The old daemon only knew version 1; reject v2-framed messages.
        if (decoded.version != 1) return;
        std::vector<std::uint8_t> payload(decoded.payload_size);
        if (!payload.empty()) socket.recv_exact(payload.data(), payload.size(), 2000);
        WireReader reader(payload.data(), payload.size());
        switch (decoded.type) {
          case MsgType::Hello: {
            reader.get_string();
            reader.expect_end();  // v1 semantics: trailing bytes drop the peer
            WireWriter ack;
            ack.put_string("legacy");
            const auto frame = encode_frame(MsgType::HelloAck, ack.bytes());
            socket.send_all(frame.data(), frame.size());
            break;
          }
          case MsgType::EvalRequest: {
            const std::uint64_t id = reader.get_u64();
            const evo::Genome genome = read_genome(reader);
            reader.expect_end();
            WireWriter response;
            response.put_u64(id);
            response.put_u8(1);
            write_eval_result(response, worker_.evaluate(genome));
            const auto frame = encode_frame(MsgType::EvalResponse, response.bytes());
            served_.fetch_add(1);  // count before writing, like the real server
            socket.send_all(frame.data(), frame.size());
            break;
          }
          case MsgType::Ping: {
            const auto frame = encode_frame(MsgType::Pong, {});
            socket.send_all(frame.data(), frame.size());
            break;
          }
          default:
            return;
        }
      }
    } catch (const WireError&) {
      dropped_hellos_.fetch_add(1);  // the trailing-bytes path lands here
    } catch (const NetError&) {
      // peer went away
    }
  }

  const core::Worker& worker_;
  Listener listener_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> dropped_hellos_{0};
  std::atomic<std::size_t> served_{0};
};

TEST(ProtocolNegotiation, DowngradeRetryReachesATrailerIntolerantV1Peer) {
  const AnalyticWorker worker;
  LegacyV1Server legacy(worker);

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", legacy.port()}};
  const RemoteWorker remote(options);  // offers v2 by default
  util::ThreadPool pool(2);

  std::vector<evo::Genome> genomes(4);
  for (std::size_t i = 0; i < genomes.size(); ++i) genomes[i].nna.hidden = {8 + 2 * i};
  const std::vector<evo::EvalOutcome> outcomes = remote.evaluate_batch(genomes, pool);

  const AnalyticWorker oracle;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_TRUE(results_identical(outcomes[i].result, oracle.evaluate(genomes[i])));
  }
  // The legacy peer dropped the v2 Hello at least once, the client retried
  // as v1 on a fresh connection, and no batch frame ever hit the wire.
  EXPECT_GE(legacy.dropped_hellos(), 1u);
  EXPECT_EQ(legacy.served(), genomes.size());
  EXPECT_EQ(remote.batches_dispatched(), 0u);
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

TEST(Heartbeat, RevivedEndpointRejoinsViaPingWithoutAnEvaluation) {
  const AnalyticWorker worker;
  const std::uint16_t port = [] {
    Listener listener("127.0.0.1", 0);
    return listener.port();
  }();

  auto server = std::make_unique<WorkerServer>(worker, WorkerServerOptions{"127.0.0.1", port});
  server->start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", port}};
  options.connect_timeout_ms = 200;
  options.endpoint_cooldown_ms = 50;  // would expire almost immediately...
  options.heartbeat_interval_ms = 40;  // ...but heartbeats gate revival on a real Pong
  const RemoteWorker remote(options);

  ASSERT_TRUE(results_identical(remote.evaluate(test_genome()), worker.evaluate(test_genome())));
  EXPECT_EQ(remote.healthy_endpoints(), 1u);

  // Kill the daemon and provoke a failure so the endpoint is sidelined.
  server->stop();
  server.reset();
  EXPECT_THROW(remote.evaluate(test_genome()), NetError);
  EXPECT_EQ(remote.healthy_endpoints(), 0u);

  // With the daemon still dead the endpoint must STAY sidelined well past
  // the cooldown window: revival is ping-gated, not timer-gated.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(remote.healthy_endpoints(), 0u);
  EXPECT_EQ(remote.heartbeat_rejoins(), 0u);

  // Revive the daemon on the same port; the heartbeat thread's Ping — not an
  // evaluation, none happens here — must bring the endpoint back.
  WorkerServer revived(worker, WorkerServerOptions{"127.0.0.1", port});
  revived.start();
  bool rejoined = false;
  for (int i = 0; i < 100 && !rejoined; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    rejoined = remote.healthy_endpoints() == 1;
  }
  EXPECT_TRUE(rejoined);
  EXPECT_GE(remote.heartbeat_rejoins(), 1u);

  // And the pool is immediately usable again.
  EXPECT_TRUE(results_identical(remote.evaluate(test_genome()), worker.evaluate(test_genome())));
  revived.stop();
}

TEST(Heartbeat, DisabledHeartbeatFallsBackToCooldownExpiry) {
  const AnalyticWorker worker;
  WorkerServer server(worker);
  server.start();

  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  options.heartbeat_interval_ms = 0;
  options.endpoint_cooldown_ms = 30;
  const RemoteWorker remote(options);
  // Sideline the endpoint artificially by evaluating against a stopped
  // server, then check the cooldown lets it back in.
  server.stop();
  EXPECT_THROW(remote.evaluate(test_genome()), NetError);
  EXPECT_EQ(remote.healthy_endpoints(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(remote.healthy_endpoints(), 1u);  // timer-gated revival (v1 behavior)
}

TEST(WorkerServer, StopIsIdempotentAndRestartable) {
  const AnalyticWorker worker;
  WorkerServer server(worker);
  server.start();
  const std::uint16_t first_port = server.port();
  EXPECT_GT(first_port, 0);
  server.stop();
  server.stop();  // idempotent

  // A fresh server can bind again immediately (SO_REUSEADDR).
  WorkerServer second(worker, {"127.0.0.1", first_port, 0, 50});
  second.start();
  EXPECT_EQ(second.port(), first_port);
  second.stop();
}

}  // namespace
}  // namespace ecad::net
