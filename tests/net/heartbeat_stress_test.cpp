// TSan-targeted stress for RemoteWorker's heartbeat thread: rapid
// start/stop cycles with a hot ping interval against unreachable endpoints,
// concurrent with the public health probes.  Like the dispatcher stress,
// the point is running this under -fsanitize=thread in CI — the heartbeat
// thread touches both heartbeat_mutex_ (stop signal) and mutex_ (endpoint
// state), and a slip in either shows up here as a hard race report.
#include "net/remote_worker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/socket.h"

namespace ecad::net {
namespace {

// An endpoint nobody listens on: connects fail fast with ECONNREFUSED, so
// the heartbeat loop spins through real connect attempts without a daemon.
RemoteWorkerOptions unreachable_options() {
  RemoteWorkerOptions options;
  options.endpoints = {{"127.0.0.1", 1}, {"127.0.0.1", 2}};
  options.connect_timeout_ms = 50;
  options.heartbeat_interval_ms = 1;  // hottest legal heartbeat
  options.max_rounds = 1;
  return options;
}

TEST(HeartbeatStress, RapidStartStopCycles) {
  // Construction starts the heartbeat thread, destruction signals and joins
  // it; a destructor racing its own thread's first tick is exactly the
  // window this loop tries to hit.
  for (int cycle = 0; cycle < 50; ++cycle) {
    const RemoteWorker worker(unreachable_options());
    if (cycle % 8 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
}

TEST(HeartbeatStress, HealthProbesRaceHeartbeatThread) {
  const RemoteWorker worker(unreachable_options());
  std::atomic<bool> done{false};

  std::thread prober([&] {
    while (!done.load(std::memory_order_acquire)) {
      // healthy_endpoints() takes mutex_, the same lock the heartbeat
      // thread's sideline scan takes between its pings.
      (void)worker.healthy_endpoints();
      std::this_thread::yield();
    }
  });

  // Sideline both endpoints via failed evaluations, repeatedly, while the
  // heartbeat thread pings them and the prober reads the state.
  evo::Genome genome;
  for (int i = 0; i < 10; ++i) {
    EXPECT_THROW((void)worker.evaluate(genome), NetError);
  }
  EXPECT_EQ(worker.ping_all(), 0u);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  done.store(true, std::memory_order_release);
  prober.join();
}

}  // namespace
}  // namespace ecad::net
