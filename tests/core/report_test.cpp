#include "core/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace ecad::core {
namespace {

evo::Candidate make_candidate(double accuracy, double throughput, bool feasible = true) {
  evo::Candidate candidate;
  candidate.genome.nna.hidden = {32};
  candidate.result.accuracy = accuracy;
  candidate.result.outputs_per_second = throughput;
  candidate.result.feasible = feasible;
  candidate.fitness = accuracy;
  return candidate;
}

TEST(Report, HistoryCsvHasRowPerCandidate) {
  const std::vector<evo::Candidate> history = {make_candidate(0.9, 1e6),
                                               make_candidate(0.8, 2e6)};
  const util::CsvTable table = history_to_csv(history);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.header.front(), "genome");
  EXPECT_EQ(table.rows[0][1], "0.9000");
}

TEST(Report, WriteHistoryCreatesFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ecad_history_test.csv").string();
  write_history({make_candidate(0.7, 1e5)}, path);
  const util::CsvTable loaded = util::read_csv_file(path, true);
  EXPECT_EQ(loaded.num_rows(), 1u);
  std::remove(path.c_str());
}

TEST(Report, BestByAccuracySkipsInfeasible) {
  const std::vector<evo::Candidate> history = {
      make_candidate(0.99, 1e3, /*feasible=*/false), make_candidate(0.8, 1e6),
      make_candidate(0.85, 1e5)};
  EXPECT_DOUBLE_EQ(best_by_accuracy(history).result.accuracy, 0.85);
}

TEST(Report, BestByAccuracyEmptyThrows) {
  EXPECT_THROW(best_by_accuracy({}), std::invalid_argument);
}

TEST(Report, BestThroughputWithinSlack) {
  const std::vector<evo::Candidate> history = {
      make_candidate(0.90, 1e5),   // top accuracy
      make_candidate(0.895, 5e6),  // within 0.01 slack, fastest
      make_candidate(0.80, 9e9),   // fast but too inaccurate
  };
  const evo::Candidate& pick = best_throughput_within(history, 0.01);
  EXPECT_DOUBLE_EQ(pick.result.outputs_per_second, 5e6);
}

TEST(Report, BestThroughputFallsBackToTopAccuracy) {
  const std::vector<evo::Candidate> history = {make_candidate(0.9, 1e5)};
  EXPECT_DOUBLE_EQ(best_throughput_within(history, 0.01).result.accuracy, 0.9);
}

}  // namespace
}  // namespace ecad::core
