// SearchScheduler + FairShareGate: fair-share batch interleaving across
// concurrent searches, per-search cancellation, and graceful drain.
#include "core/search_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/master.h"

namespace ecad::core {
namespace {

// Deterministic analytic worker with an optional per-evaluation delay, so a
// search can be held "in flight" long enough to cancel or drain under it.
class SlowAnalyticWorker final : public Worker {
 public:
  explicit SlowAnalyticWorker(int delay_ms = 0) : delay_ms_(delay_ms) {}

  std::string name() const override { return "slow-analytic"; }

  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    calls_.fetch_add(1);
    if (delay_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    }
    evo::EvalResult result;
    result.accuracy = 0.5 + 0.1 * static_cast<double>(genome.nna.hidden.size());
    result.outputs_per_second = 1e6 / static_cast<double>(genome.grid.dsp_usage());
    return result;
  }

  std::size_t calls() const { return calls_.load(); }

 private:
  int delay_ms_ = 0;
  mutable std::atomic<std::size_t> calls_{0};
};

SearchRequest small_request(std::uint64_t seed, std::size_t evaluations) {
  SearchRequest request;
  request.seed = seed;
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = evaluations;
  request.evolution.batch_size = 3;
  request.threads = 1;
  return request;
}

/// Latch for outcomes delivered on runner threads.
class OutcomeBox {
 public:
  void put(const SearchOutcome& outcome) {
    std::lock_guard<std::mutex> lock(mutex_);
    outcome_ = outcome;
    done_ = true;
    cv_.notify_all();
  }
  SearchOutcome take() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return done_; });
    return outcome_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  SearchOutcome outcome_;
  bool done_ = false;
};

TEST(FairShareGate, WeightedGrantsApproachWeightRatio) {
  // One trial: two pumps rendezvous on `go` before their first acquire, and
  // each grant holds the slot ~200us — so thread-startup skew is a fraction
  // of one grant and cannot let either pump lap the other uncontended.
  // Returns {heavy grants, light grants}.
  auto trial = [] {
    FairShareGate gate(1);
    gate.add(1, 3.0, 1000);
    gate.add(2, 1.0, 1000);
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::atomic<bool> stop{false};
    auto pump = [&gate, &ready, &go, &stop](std::uint64_t id) {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      while (!stop.load()) {
        if (!gate.acquire(id, 1)) return;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        gate.release();
      }
    };
    std::thread heavy(pump, 1);
    std::thread light(pump, 2);
    while (ready.load() < 2) std::this_thread::yield();
    go.store(true);
    while (gate.grants(1) + gate.grants(2) < 300) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop.store(true);
    heavy.join();
    light.join();
    return std::pair<std::uint64_t, std::uint64_t>{gate.grants(1), gate.grants(2)};
  };

  // Stride scheduling gives the weight-3 entry ~3x the batches whenever both
  // pumps actually contend.  An oversubscribed single core can't guarantee
  // that: a holder descheduled in its release->reacquire gap leaves the
  // other pump as the only waiter, and the gate's no-banked-credit catch-up
  // then deliberately collapses such rounds into 1:1 alternation.  So demand
  // the ratio from the best of a few independent trials — the property under
  // test is the gate's choice rule, not the OS scheduler's cooperation.
  std::uint64_t heavy_grants = 0;
  std::uint64_t light_grants = 0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    std::tie(heavy_grants, light_grants) = trial();
    if (light_grants > 0 && heavy_grants >= light_grants * 2) return;
  }
  EXPECT_GT(light_grants, 0u) << "light search starved outright";
  EXPECT_GE(heavy_grants, light_grants * 2) << heavy_grants << " vs " << light_grants;
}

TEST(FairShareGate, RemoveWakesBlockedAcquire) {
  FairShareGate gate(1);
  gate.add(1, 1.0, 10);
  gate.add(2, 1.0, 10);
  ASSERT_TRUE(gate.acquire(1, 1));  // hold the only slot
  std::atomic<bool> returned{false};
  std::atomic<bool> granted{true};
  std::thread waiter([&] {
    granted.store(gate.acquire(2, 1));
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load()) << "acquire returned without a slot";
  gate.remove(2);  // cancellation path
  waiter.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(granted.load()) << "a removed search must not be granted a slot";
  gate.release();
}

TEST(FairShareGate, AcquireAfterRemoveFailsFast) {
  FairShareGate gate(2);
  gate.add(7, 1.0, 10);
  gate.remove(7);
  EXPECT_FALSE(gate.acquire(7, 1));
  EXPECT_EQ(gate.grants(7), 0u);
}

TEST(SearchScheduler, MatchesMasterSearchExactly) {
  const SlowAnalyticWorker worker;
  Master master;
  const SearchRequest request = small_request(11, 24);
  const evo::EvolutionResult reference = master.search(worker, request);

  SearchSchedulerOptions options;
  options.max_concurrent_searches = 1;
  SearchScheduler scheduler(worker, options);
  OutcomeBox box;
  scheduler.submit(request, nullptr, [&box](const SearchOutcome& outcome) { box.put(outcome); });
  const SearchOutcome outcome = box.take();

  ASSERT_EQ(outcome.state, SearchState::Completed) << outcome.message;
  ASSERT_EQ(outcome.result.history.size(), reference.history.size());
  for (std::size_t i = 0; i < reference.history.size(); ++i) {
    EXPECT_EQ(outcome.result.history[i].genome.key(), reference.history[i].genome.key())
        << "candidate " << i << " diverged";
    EXPECT_EQ(outcome.result.history[i].fitness, reference.history[i].fitness);
  }
  EXPECT_EQ(outcome.result.best.genome.key(), reference.best.genome.key());
  EXPECT_EQ(outcome.result.stats.models_evaluated, reference.stats.models_evaluated);
  EXPECT_EQ(outcome.result.stats.duplicates_skipped, reference.stats.duplicates_skipped);
}

TEST(SearchScheduler, ProgressObserverStreamsGenerationBoundaries) {
  const SlowAnalyticWorker worker;
  SearchScheduler scheduler(worker);
  std::mutex mutex;
  std::vector<SearchProgressInfo> seen;
  OutcomeBox box;
  const std::uint64_t id = scheduler.submit(
      small_request(3, 24),
      [&](const SearchProgressInfo& info) {
        std::lock_guard<std::mutex> lock(mutex);
        seen.push_back(info);
      },
      [&box](const SearchOutcome& outcome) { box.put(outcome); });
  const SearchOutcome outcome = box.take();
  ASSERT_EQ(outcome.state, SearchState::Completed);
  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_GE(seen.size(), 2u) << "expected generation 0 plus at least one fold";
  EXPECT_EQ(seen.front().generation, 0u);
  EXPECT_EQ(seen.front().search_id, id);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].generation, seen[i - 1].generation + 1);
    EXPECT_GE(seen[i].models_evaluated, seen[i - 1].models_evaluated);
  }
  EXPECT_EQ(seen.back().models_evaluated, 24u);
  EXPECT_GT(seen.back().pareto_front_size, 0u);
}

TEST(SearchScheduler, FairShareLetsSmallSearchesFinishUnderABigOne) {
  const SlowAnalyticWorker worker(/*delay_ms=*/1);
  SearchSchedulerOptions options;
  options.max_concurrent_searches = 3;
  options.dispatch_slots = 1;  // full contention: every batch goes through the gate in turn
  SearchScheduler scheduler(worker, options);

  std::atomic<bool> big_done{false};
  std::atomic<int> small_finished_while_big_ran{0};
  OutcomeBox big_box;
  scheduler.submit(small_request(1, 600), nullptr, [&](const SearchOutcome& outcome) {
    big_done.store(true);
    big_box.put(outcome);
  });
  OutcomeBox small_a;
  OutcomeBox small_b;
  scheduler.submit(small_request(2, 24), nullptr, [&](const SearchOutcome& outcome) {
    if (!big_done.load()) small_finished_while_big_ran.fetch_add(1);
    small_a.put(outcome);
  });
  scheduler.submit(small_request(3, 24), nullptr, [&](const SearchOutcome& outcome) {
    if (!big_done.load()) small_finished_while_big_ran.fetch_add(1);
    small_b.put(outcome);
  });

  EXPECT_EQ(small_a.take().state, SearchState::Completed);
  EXPECT_EQ(small_b.take().state, SearchState::Completed);
  EXPECT_EQ(big_box.take().state, SearchState::Completed);
  // The big search must not have stalled the small ones past its fair
  // share: both 24-evaluation searches finish while the 600-evaluation one
  // is still running.
  EXPECT_EQ(small_finished_while_big_ran.load(), 2)
      << "small searches queued behind the big one instead of interleaving";
}

TEST(SearchScheduler, CancelStopsDispatchingToTheDeadSearch) {
  const SlowAnalyticWorker worker(/*delay_ms=*/3);
  SearchScheduler scheduler(worker);
  std::atomic<std::uint32_t> generations{0};
  OutcomeBox box;
  const std::uint64_t id = scheduler.submit(
      small_request(5, 600),
      [&generations](const SearchProgressInfo&) { generations.fetch_add(1); },
      [&box](const SearchOutcome& outcome) { box.put(outcome); });
  while (generations.load() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(scheduler.cancel(id, "test cancel"));
  const SearchOutcome outcome = box.take();
  EXPECT_EQ(outcome.state, SearchState::Canceled);
  EXPECT_EQ(outcome.message, "test cancel");
  EXPECT_EQ(scheduler.state_of(id), SearchState::Canceled);
  // Nothing is requeued to the dead search: the worker sees no further
  // evaluations once the cancel has settled.
  const std::size_t calls_at_done = worker.calls();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(worker.calls(), calls_at_done) << "evaluations dispatched after cancellation";
  // A second cancel is a clean no-op.
  EXPECT_FALSE(scheduler.cancel(id, "again"));
}

TEST(SearchScheduler, CancelQueuedSearchNeverDispatches) {
  const SlowAnalyticWorker worker(/*delay_ms=*/2);
  SearchSchedulerOptions options;
  options.max_concurrent_searches = 1;
  SearchScheduler scheduler(worker, options);
  OutcomeBox running_box;
  const std::uint64_t running = scheduler.submit(
      small_request(1, 300), nullptr,
      [&running_box](const SearchOutcome& outcome) { running_box.put(outcome); });
  OutcomeBox queued_box;
  std::atomic<int> queued_progress{0};
  const std::uint64_t queued = scheduler.submit(
      small_request(2, 300),
      [&queued_progress](const SearchProgressInfo&) { queued_progress.fetch_add(1); },
      [&queued_box](const SearchOutcome& outcome) { queued_box.put(outcome); });
  ASSERT_TRUE(scheduler.cancel(queued, "canceled while queued"));
  scheduler.cancel(running, "unblock the runner");
  EXPECT_EQ(queued_box.take().state, SearchState::Canceled);
  EXPECT_EQ(queued_progress.load(), 0) << "a canceled queued search must not start";
  running_box.take();
}

TEST(SearchScheduler, DrainFinishesInFlightGenerationsAndCancelsTheRest) {
  const SlowAnalyticWorker worker(/*delay_ms=*/3);
  SearchSchedulerOptions options;
  options.max_concurrent_searches = 1;
  SearchScheduler scheduler(worker, options);
  std::atomic<std::uint32_t> generations{0};
  OutcomeBox running_box;
  scheduler.submit(
      small_request(7, 600),
      [&generations](const SearchProgressInfo&) { generations.fetch_add(1); },
      [&running_box](const SearchOutcome& outcome) { running_box.put(outcome); });
  OutcomeBox queued_box;
  scheduler.submit(small_request(8, 600), nullptr,
                   [&queued_box](const SearchOutcome& outcome) { queued_box.put(outcome); });
  while (generations.load() < 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  scheduler.drain();
  // drain() returns only after every done-callback has fired.
  const SearchOutcome running_outcome = running_box.take();
  const SearchOutcome queued_outcome = queued_box.take();
  EXPECT_EQ(running_outcome.state, SearchState::Canceled);
  EXPECT_EQ(running_outcome.message, "daemon draining");
  EXPECT_EQ(queued_outcome.state, SearchState::Canceled);
  EXPECT_EQ(queued_outcome.message, "daemon draining");
  EXPECT_EQ(scheduler.active_searches(), 0u);
  // The in-flight generation completed (no torn batches): the worker goes
  // quiet the moment drain() returns.
  const std::size_t calls_at_drain = worker.calls();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(worker.calls(), calls_at_drain);
  // And the scheduler admits nothing new.
  EXPECT_THROW(scheduler.submit(small_request(9, 24), nullptr, nullptr), std::runtime_error);
}

TEST(SearchScheduler, UnknownFitnessFailsFast) {
  const SlowAnalyticWorker worker;
  SearchScheduler scheduler(worker);
  EXPECT_THROW(
      {
        SearchRequest request = small_request(1, 24);
        request.fitness = "no-such-fitness";
        scheduler.submit(std::move(request), nullptr, nullptr);
      },
      std::out_of_range);
  EXPECT_EQ(scheduler.active_searches(), 0u);
}

}  // namespace
}  // namespace ecad::core
