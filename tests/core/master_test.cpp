#include "core/master.h"

#include <gtest/gtest.h>

#include <atomic>

namespace ecad::core {
namespace {

// Deterministic analytic worker (no training): lets master tests run fast.
class AnalyticWorker final : public Worker {
 public:
  std::string name() const override { return "analytic"; }
  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    evo::EvalResult result;
    result.accuracy = 0.5 + 0.1 * static_cast<double>(genome.nna.hidden.size());
    result.outputs_per_second = 1e6 / static_cast<double>(genome.grid.dsp_usage());
    return result;
  }
};

TEST(Master, RunsSearchWithNamedFitness) {
  Master master;
  const AnalyticWorker worker;
  SearchRequest request;
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = 24;
  request.fitness = "accuracy";
  request.threads = 1;
  const auto result = master.search(worker, request);
  EXPECT_GE(result.stats.models_evaluated, 6u);
  // Accuracy grows with depth; the winner should use max layers (4).
  EXPECT_EQ(result.best.genome.nna.hidden.size(), 4u);
}

// Counts distinct evaluations — the probe for intra-batch dedup.
class CountingWorker final : public Worker {
 public:
  std::string name() const override { return "counting"; }
  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    calls_.fetch_add(1);
    evo::EvalResult result;
    result.accuracy = 0.5 + 0.01 * static_cast<double>(genome.nna.hidden.size());
    result.parameters = static_cast<double>(genome.grid.dsp_usage());
    return result;
  }
  std::size_t calls() const { return calls_.load(); }

 private:
  mutable std::atomic<std::size_t> calls_{0};
};

TEST(Master, IntraBatchDedupCollapsesDuplicatesAndFansResultsBack) {
  const CountingWorker worker;
  util::ThreadPool pool(2);

  evo::Genome a;
  a.nna.hidden = {16};
  evo::Genome b;
  b.nna.hidden = {32, 8};
  // a twice, b three times, a again: 6 slots, 2 unique evaluations.
  const std::vector<evo::Genome> genomes = {a, b, a, b, b, a};
  const std::vector<evo::EvalOutcome> outcomes = evaluate_batch_deduped(worker, genomes, pool);

  ASSERT_EQ(outcomes.size(), genomes.size());
  EXPECT_EQ(worker.calls(), 2u) << "duplicate genomes crossed the dedup layer";
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << "slot " << i;
    const evo::EvalResult direct = worker.evaluate(genomes[i]);
    EXPECT_EQ(outcomes[i].result.accuracy, direct.accuracy) << "slot " << i;
    EXPECT_EQ(outcomes[i].result.parameters, direct.parameters) << "slot " << i;
  }
  // Duplicate slots hold bit-identical copies of the first occurrence.
  EXPECT_EQ(outcomes[0].result.accuracy, outcomes[2].result.accuracy);
  EXPECT_EQ(outcomes[1].result.accuracy, outcomes[4].result.accuracy);
}

TEST(Master, DedupPassesUniqueBatchesStraightThrough) {
  const CountingWorker worker;
  util::ThreadPool pool(2);
  std::vector<evo::Genome> genomes(3);
  for (std::size_t i = 0; i < genomes.size(); ++i) genomes[i].nna.hidden = {8 + 8 * i};
  const std::vector<evo::EvalOutcome> outcomes = evaluate_batch_deduped(worker, genomes, pool);
  ASSERT_EQ(outcomes.size(), genomes.size());
  EXPECT_EQ(worker.calls(), genomes.size());
  for (const evo::EvalOutcome& outcome : outcomes) EXPECT_TRUE(outcome.ok);
}

TEST(Master, DedupPreservesPerSlotErrorsForPoisonedDuplicates) {
  // Poisoned genome appearing twice: both slots fail with the same message,
  // from one evaluation.
  class PartiallyThrowingWorker final : public Worker {
   public:
    std::string name() const override { return "partial"; }
    evo::EvalResult evaluate(const evo::Genome& genome) const override {
      if (genome.nna.hidden.empty()) throw std::domain_error("poisoned");
      evo::EvalResult result;
      result.accuracy = 0.7;
      return result;
    }
  };
  const PartiallyThrowingWorker worker;
  util::ThreadPool pool(2);
  evo::Genome poisoned;  // empty hidden list
  evo::Genome healthy;
  healthy.nna.hidden = {8};
  const std::vector<evo::Genome> genomes = {poisoned, healthy, poisoned};
  const std::vector<evo::EvalOutcome> outcomes = evaluate_batch_deduped(worker, genomes, pool);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_TRUE(outcomes[1].ok);
  EXPECT_FALSE(outcomes[2].ok);
  EXPECT_EQ(outcomes[0].error, outcomes[2].error);
}

// Worker that fails on every genome — exercises error propagation.
class ExplodingWorker final : public Worker {
 public:
  std::string name() const override { return "exploding"; }
  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    throw std::domain_error("synthetic failure for " + std::to_string(genome.grid.rows) +
                            " rows");
  }
};

TEST(Master, WorkerFailureCarriesWorkerNameAndGenomeKey) {
  Master master;
  const ExplodingWorker worker;
  SearchRequest request;
  request.evolution.population_size = 4;
  request.evolution.max_evaluations = 8;
  request.threads = 2;
  try {
    master.search(worker, request);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    // The offending candidate is identifiable: worker name, genome key, and
    // the original reason all survive the thread-pool rethrow.
    EXPECT_NE(message.find("worker 'exploding' failed on genome "), std::string::npos)
        << message;
    EXPECT_NE(message.find("h:"), std::string::npos) << message;  // genome key prefix
    EXPECT_NE(message.find("synthetic failure"), std::string::npos) << message;
  }
}

TEST(Master, UnknownFitnessThrows) {
  Master master;
  const AnalyticWorker worker;
  SearchRequest request;
  request.fitness = "made_up_metric";
  EXPECT_THROW(master.search(worker, request), std::out_of_range);
}

TEST(Master, CustomFitnessRegistration) {
  Master master;
  master.registry().register_fn("inverse_dsp", [](const evo::EvalResult& result) {
    return result.outputs_per_second;  // analytic worker: smaller grid = higher
  });
  const AnalyticWorker worker;
  SearchRequest request;
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = 30;
  request.fitness = "inverse_dsp";
  request.threads = 1;
  const auto result = master.search(worker, request);
  // The best genome should use a small grid (dsp_usage near the minimum 16).
  EXPECT_LE(result.best.genome.grid.dsp_usage(), 64u);
}

TEST(Master, ParetoCandidatesAreNonDominatedAndSorted) {
  std::vector<evo::Candidate> history;
  auto add = [&history](double accuracy, double throughput) {
    evo::Candidate candidate;
    candidate.result.accuracy = accuracy;
    candidate.result.outputs_per_second = throughput;
    history.push_back(candidate);
  };
  add(0.95, 1e5);
  add(0.90, 1e6);
  add(0.90, 5e5);  // dominated
  add(0.85, 1e7);
  add(0.70, 1e3);  // dominated

  const auto front = Master::pareto_candidates(
      history, {evo::Metric::Accuracy, evo::Metric::Throughput});
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].result.accuracy, 0.95);  // sorted by accuracy desc
  EXPECT_DOUBLE_EQ(front[1].result.accuracy, 0.90);
  EXPECT_DOUBLE_EQ(front[2].result.accuracy, 0.85);
}

}  // namespace
}  // namespace ecad::core
