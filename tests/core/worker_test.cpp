#include "core/worker.h"

#include <gtest/gtest.h>

#include "data/benchmarks.h"

namespace ecad::core {
namespace {

class WorkerTest : public ::testing::Test {
 protected:
  WorkerTest()
      : split_(data::load_benchmark_split(data::Benchmark::CreditG, 0.3, 5)) {
    options_.epochs = 8;
  }

  evo::Genome small_genome() const {
    evo::Genome genome;
    genome.nna.hidden = {16};
    genome.grid = {8, 8, 8, 4, 4};
    return genome;
  }

  data::TrainTestSplit split_;
  nn::TrainOptions options_;
};

TEST_F(WorkerTest, AccuracyWorkerTrainsAndScores) {
  const AccuracyWorker worker(split_, options_, 3);
  const evo::EvalResult result = worker.evaluate(small_genome());
  EXPECT_GT(result.accuracy, 0.5);  // must beat coin flip on credit-g surrogate
  EXPECT_LE(result.accuracy, 1.0);
  EXPECT_GT(result.parameters, 0.0);
  EXPECT_GT(result.flops_per_sample, 0.0);
  EXPECT_TRUE(result.feasible);
  // Accuracy worker does not model hardware.
  EXPECT_DOUBLE_EQ(result.outputs_per_second, 0.0);
}

TEST_F(WorkerTest, AccuracyWorkerDeterministicPerGenome) {
  const AccuracyWorker worker(split_, options_, 3);
  const evo::EvalResult a = worker.evaluate(small_genome());
  const evo::EvalResult b = worker.evaluate(small_genome());
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST_F(WorkerTest, FpgaWorkerFillsHardwareMetrics) {
  const FpgaHardwareDatabaseWorker worker(split_, options_, 3, hw::arria10_gx1150(1), 256);
  const evo::EvalResult result = worker.evaluate(small_genome());
  EXPECT_GT(result.accuracy, 0.5);
  EXPECT_GT(result.outputs_per_second, 0.0);
  EXPECT_GT(result.latency_seconds, 0.0);
  EXPECT_GT(result.potential_gflops, 0.0);
  EXPECT_GT(result.hw_efficiency, 0.0);
  EXPECT_GT(result.power_watts, 20.0);
  EXPECT_GT(result.fmax_mhz, 100.0);
}

TEST_F(WorkerTest, FpgaWorkerRejectsOversizedGridWithoutTraining) {
  const FpgaHardwareDatabaseWorker worker(split_, options_, 3, hw::arria10_gx1150(1), 256);
  evo::Genome genome = small_genome();
  genome.grid = {32, 32, 16, 4, 4};  // 16384 DSPs >> 1518
  const evo::EvalResult result = worker.evaluate(genome);
  EXPECT_FALSE(result.feasible);
  EXPECT_DOUBLE_EQ(result.accuracy, 0.0);  // fail fast: no training happened
}

TEST_F(WorkerTest, GpuWorkerIgnoresHardwareTraits) {
  const GpuSimulationWorker worker(split_, options_, 3, hw::titan_x(), 512);
  evo::Genome a = small_genome();
  evo::Genome b = small_genome();
  b.grid = {16, 16, 4, 8, 8};  // different grid, same NNA
  const evo::EvalResult ra = worker.evaluate(a);
  const evo::EvalResult rb = worker.evaluate(b);
  EXPECT_DOUBLE_EQ(ra.outputs_per_second, rb.outputs_per_second);
}

TEST_F(WorkerTest, GpuWorkerEfficiencyIsLowForSmallNets) {
  const GpuSimulationWorker worker(split_, options_, 3, hw::titan_x(), 512);
  const evo::EvalResult result = worker.evaluate(small_genome());
  EXPECT_GT(result.hw_efficiency, 0.0);
  EXPECT_LT(result.hw_efficiency, 0.05);  // paper: ~0.3% on MLP workloads
}

TEST_F(WorkerTest, PhysicalWorkerNeedsNoTraining) {
  const PhysicalWorker worker(hw::arria10_gx1150(1));
  const evo::EvalResult result = worker.evaluate(small_genome());
  EXPECT_GT(result.power_watts, 20.0);
  EXPECT_GT(result.fmax_mhz, 100.0);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.accuracy, 0.0);
}

TEST_F(WorkerTest, WorkerNamesIdentifyBackend) {
  EXPECT_EQ(AccuracyWorker(split_, options_, 1).name(), "accuracy");
  EXPECT_NE(FpgaHardwareDatabaseWorker(split_, options_, 1, hw::arria10_gx1150()).name().find(
                "hw-db"),
            std::string::npos);
  EXPECT_NE(GpuSimulationWorker(split_, options_, 1, hw::titan_x()).name().find("sim"),
            std::string::npos);
  EXPECT_NE(PhysicalWorker(hw::arria10_gx1150()).name().find("physical"), std::string::npos);
}

}  // namespace
}  // namespace ecad::core
