#include "core/checkpoint.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.h"

namespace ecad::core {
namespace {

// mkdtemp, not a fixed name: the submission journal is append-only, so a
// reused directory would leak state between test-binary invocations.
std::string make_temp_dir(const std::string& stem) {
  std::string templ = ::testing::TempDir() + "checkpoint_" + stem + "_XXXXXX";
  if (::mkdtemp(templ.data()) == nullptr) {
    ADD_FAILURE() << "mkdtemp failed for " << templ;
  }
  return templ;
}

SearchRequest sample_request() {
  SearchRequest request;
  request.seed = 17;
  request.threads = 3;
  request.fitness = "accuracy";
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = 24;
  request.evolution.tournament_size = 3;
  request.evolution.crossover_probability = 0.75;
  request.evolution.mutation_strength = 1.5;
  request.evolution.dedup_attempts = 12;
  request.evolution.batch_size = 3;
  request.evolution.overlap_generations = true;
  request.evolution.max_inflight_batches = 4;
  request.space.min_hidden_layers = 2;
  request.space.max_hidden_layers = 3;
  request.space.width_choices = {16, 64};
  request.space.activations = {nn::Activation::Tanh, nn::Activation::ReLU};
  request.space.allow_no_bias = false;
  request.space.search_hardware = false;
  return request;
}

evo::EngineSnapshot sample_snapshot() {
  evo::EngineSnapshot snapshot;
  util::Rng rng(7);
  snapshot.rng_state = rng.serialize();
  snapshot.overlap = false;
  snapshot.generation = 2;
  evo::Candidate candidate;
  candidate.genome.nna.hidden = {64, 16};
  candidate.fitness = 0.5;
  snapshot.population = {candidate};
  snapshot.history = {candidate};
  snapshot.submitted = 1;
  snapshot.models_evaluated = 1;
  return snapshot;
}

void expect_same_request(const SearchRequest& a, const SearchRequest& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.fitness, b.fitness);
  EXPECT_EQ(a.evolution.population_size, b.evolution.population_size);
  EXPECT_EQ(a.evolution.max_evaluations, b.evolution.max_evaluations);
  EXPECT_EQ(a.evolution.tournament_size, b.evolution.tournament_size);
  EXPECT_EQ(a.evolution.crossover_probability, b.evolution.crossover_probability);
  EXPECT_EQ(a.evolution.mutation_strength, b.evolution.mutation_strength);
  EXPECT_EQ(a.evolution.dedup_attempts, b.evolution.dedup_attempts);
  EXPECT_EQ(a.evolution.batch_size, b.evolution.batch_size);
  EXPECT_EQ(a.evolution.overlap_generations, b.evolution.overlap_generations);
  EXPECT_EQ(a.evolution.max_inflight_batches, b.evolution.max_inflight_batches);
  EXPECT_EQ(a.space.min_hidden_layers, b.space.min_hidden_layers);
  EXPECT_EQ(a.space.max_hidden_layers, b.space.max_hidden_layers);
  EXPECT_EQ(a.space.width_choices, b.space.width_choices);
  EXPECT_EQ(a.space.activations, b.space.activations);
  EXPECT_EQ(a.space.allow_no_bias, b.space.allow_no_bias);
  EXPECT_EQ(a.space.search_hardware, b.space.search_hardware);
}

TEST(CheckpointCodec, SearchRequestRoundTrips) {
  util::SnapshotWriter writer;
  write_search_request_snapshot(writer, sample_request());
  util::SnapshotReader reader(writer.bytes());
  const SearchRequest decoded = read_search_request_snapshot(reader);
  reader.expect_end();
  expect_same_request(sample_request(), decoded);
}

TEST(CheckpointCodec, CheckpointRoundTrips) {
  SearchCheckpoint checkpoint;
  checkpoint.search_id = 42;
  checkpoint.request = sample_request();
  checkpoint.snapshot = sample_snapshot();
  const SearchCheckpoint decoded = deserialize_checkpoint(serialize_checkpoint(checkpoint));
  EXPECT_EQ(decoded.search_id, 42u);
  expect_same_request(checkpoint.request, decoded.request);
  EXPECT_EQ(decoded.snapshot.generation, 2u);
  EXPECT_EQ(decoded.snapshot.rng_state, checkpoint.snapshot.rng_state);
}

TEST(CheckpointCodec, CorruptBytesRejected) {
  SearchCheckpoint checkpoint;
  checkpoint.search_id = 1;
  checkpoint.request = sample_request();
  checkpoint.snapshot = sample_snapshot();
  std::vector<std::uint8_t> bytes = serialize_checkpoint(checkpoint);
  EXPECT_THROW(deserialize_checkpoint({}), util::SnapshotError);
  bytes[0] ^= 0xff;  // magic
  EXPECT_THROW(deserialize_checkpoint(bytes), util::SnapshotError);
  bytes[0] ^= 0xff;
  bytes.resize(bytes.size() / 2);  // truncation
  EXPECT_THROW(deserialize_checkpoint(bytes), util::SnapshotError);
}

TEST(CheckpointWriterTest, PersistsAndMarksDone) {
  const std::string dir = make_temp_dir("writer");
  CheckpointWriter writer(dir, 3, sample_request());
  evo::EngineSnapshot snapshot = sample_snapshot();
  writer.write(snapshot);

  const SearchCheckpoint loaded =
      deserialize_checkpoint(util::read_file_bytes(checkpoint_path(dir, 3)));
  EXPECT_EQ(loaded.search_id, 3u);
  EXPECT_EQ(loaded.snapshot.generation, snapshot.generation);

  writer.mark_done();
  EXPECT_THROW(util::read_file_bytes(checkpoint_path(dir, 3)), util::SnapshotError);
  EXPECT_NO_THROW(util::read_file_bytes(done_marker_path(dir, 3)));
}

TEST(CheckpointWriterTest, EveryThrottlesButBoundaryZeroAlwaysPersists) {
  const std::string dir = make_temp_dir("throttle");
  CheckpointWriter writer(dir, 9, sample_request(), /*every=*/3);
  evo::EngineSnapshot snapshot = sample_snapshot();

  snapshot.generation = 0;
  writer.write(snapshot);  // boundary 0: always persisted
  EXPECT_EQ(deserialize_checkpoint(util::read_file_bytes(checkpoint_path(dir, 9)))
                .snapshot.generation,
            0u);

  snapshot.generation = 1;
  writer.write(snapshot);  // throttled
  snapshot.generation = 2;
  writer.write(snapshot);  // throttled
  EXPECT_EQ(deserialize_checkpoint(util::read_file_bytes(checkpoint_path(dir, 9)))
                .snapshot.generation,
            0u);

  snapshot.generation = 3;
  writer.write(snapshot);  // 3rd boundary after 0: persisted
  EXPECT_EQ(deserialize_checkpoint(util::read_file_bytes(checkpoint_path(dir, 9)))
                .snapshot.generation,
            3u);
}

TEST(SubmissionJournalTest, AppendLoadRoundTrips) {
  const std::string dir = make_temp_dir("journal");
  const std::string path = SubmissionJournal::journal_path(dir);
  {
    SubmissionJournal journal(path);
    journal.append(1, sample_request());
    SearchRequest second = sample_request();
    second.seed = 99;
    journal.append(2, second);
  }
  const std::vector<SubmissionJournal::Entry> entries = SubmissionJournal::load(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].search_id, 1u);
  EXPECT_EQ(entries[1].search_id, 2u);
  EXPECT_EQ(entries[1].request.seed, 99u);
  expect_same_request(entries[0].request, sample_request());
}

TEST(SubmissionJournalTest, MissingFileLoadsEmpty) {
  const std::string dir = make_temp_dir("missing");
  EXPECT_TRUE(SubmissionJournal::load(SubmissionJournal::journal_path(dir)).empty());
}

TEST(SubmissionJournalTest, TornTailIsIgnored) {
  const std::string dir = make_temp_dir("torn");
  const std::string path = SubmissionJournal::journal_path(dir);
  {
    SubmissionJournal journal(path);
    journal.append(1, sample_request());
    journal.append(2, sample_request());
  }
  // Truncate mid-way through the second entry, as a crash mid-append would.
  const std::vector<std::uint8_t> bytes = util::read_file_bytes(path);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size() - 7));
  out.close();

  const std::vector<SubmissionJournal::Entry> entries = SubmissionJournal::load(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].search_id, 1u);
}

TEST(ScanCheckpointDir, MissingDirYieldsNothing) {
  EXPECT_TRUE(scan_checkpoint_dir(::testing::TempDir() + "scan_never_created").empty());
}

TEST(ScanCheckpointDir, UnionOfJournalAndCheckpointsSortedById) {
  const std::string dir = make_temp_dir("scan");
  {
    SubmissionJournal journal(SubmissionJournal::journal_path(dir));
    SearchRequest request = sample_request();
    journal.append(5, request);  // journaled, never checkpointed
    journal.append(2, request);  // journaled + checkpointed below
  }
  // Checkpoints for ids 2 and 9 (9 simulates a journal rotation gap).
  for (const std::uint64_t id : {std::uint64_t{9}, std::uint64_t{2}}) {
    SearchCheckpoint checkpoint;
    checkpoint.search_id = id;
    checkpoint.request = sample_request();
    checkpoint.snapshot = sample_snapshot();
    util::write_file_atomic(checkpoint_path(dir, id), serialize_checkpoint(checkpoint));
  }

  const std::vector<ResumableSearch> found = scan_checkpoint_dir(dir);
  ASSERT_EQ(found.size(), 3u);
  // Deterministic re-admission order: sorted by id, regardless of readdir
  // or journal order.
  EXPECT_EQ(found[0].search_id, 2u);
  EXPECT_EQ(found[1].search_id, 5u);
  EXPECT_EQ(found[2].search_id, 9u);
  EXPECT_TRUE(found[0].has_snapshot);
  EXPECT_FALSE(found[1].has_snapshot);  // queued-only: re-admit from scratch
  EXPECT_TRUE(found[2].has_snapshot);
}

TEST(ScanCheckpointDir, DoneMarkerExcludesSearch) {
  const std::string dir = make_temp_dir("done");
  CheckpointWriter writer(dir, 4, sample_request());
  writer.write(sample_snapshot());
  ASSERT_EQ(scan_checkpoint_dir(dir).size(), 1u);
  writer.mark_done();
  EXPECT_TRUE(scan_checkpoint_dir(dir).empty());
}

TEST(ScanCheckpointDir, DoneMarkerAlsoMasksJournalEntry) {
  const std::string dir = make_temp_dir("done_journal");
  {
    SubmissionJournal journal(SubmissionJournal::journal_path(dir));
    journal.append(6, sample_request());
  }
  CheckpointWriter writer(dir, 6, sample_request());
  writer.mark_done();
  EXPECT_TRUE(scan_checkpoint_dir(dir).empty());
}

TEST(ScanCheckpointDir, CorruptCheckpointFallsBackToJournal) {
  const std::string dir = make_temp_dir("corrupt");
  {
    SubmissionJournal journal(SubmissionJournal::journal_path(dir));
    SearchRequest request = sample_request();
    request.seed = 1234;
    journal.append(7, request);
  }
  // A checkpoint that is pure garbage must not crash the scan or lose the
  // journaled search.
  std::ofstream out(checkpoint_path(dir, 7), std::ios::binary | std::ios::trunc);
  out << "garbage bytes, not a checkpoint";
  out.close();

  const std::vector<ResumableSearch> found = scan_checkpoint_dir(dir);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].search_id, 7u);
  EXPECT_FALSE(found[0].has_snapshot);
  EXPECT_EQ(found[0].request.seed, 1234u);
}

TEST(ScanCheckpointDir, CorruptCheckpointWithoutJournalIsDropped) {
  const std::string dir = make_temp_dir("corrupt_only");
  std::ofstream out(checkpoint_path(dir, 8), std::ios::binary | std::ios::trunc);
  out << "garbage";
  out.close();
  EXPECT_TRUE(scan_checkpoint_dir(dir).empty());
}

}  // namespace
}  // namespace ecad::core
