// core::EvalPipeline: the staged dedup -> fleet cache -> dispatch path that
// replaced the evaluate_batch / evaluate_batch_deduped call-site zoo.  The
// contract under test: stage-inert chunks are bit-identical to the legacy
// dispatch, duplicate slots share one evaluation, cache hits skip dispatch
// entirely, and only freshly dispatched successes are published back.
#include "core/eval_pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/worker.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace ecad::core {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Deterministic synthetic worker: the result is a pure function of the
/// genome, evaluations are counted, and one marker genome (hidden = {13})
/// always throws — the per-slot failure path.
class StubWorker : public Worker {
 public:
  std::string name() const override { return "stub"; }

  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    evaluations.fetch_add(1, std::memory_order_relaxed);
    if (!genome.nna.hidden.empty() && genome.nna.hidden.front() == 13) {
      throw std::runtime_error("poisoned genome");
    }
    evo::EvalResult result;
    result.accuracy = static_cast<double>(genome.nna.hidden.front()) / 100.0;
    result.parameters = static_cast<double>(genome.grid.rows);
    result.feasible = true;
    return result;
  }

  mutable std::atomic<int> evaluations{0};
};

/// In-process FleetEvalCache: a map plus a log of what was stored, so tests
/// can assert exactly which outcomes the pipeline published.
class FakeFleetCache final : public FleetEvalCache {
 public:
  void fleet_lookup(const std::vector<evo::Genome>& genomes,
                    std::vector<evo::EvalOutcome>& outcomes) const override {
    lookups.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < genomes.size() && i < outcomes.size(); ++i) {
      const auto it = entries.find(genomes[i].key());
      if (it != entries.end()) {
        outcomes[i].result = it->second;
        outcomes[i].ok = true;
      }
    }
  }

  void fleet_store(const std::vector<evo::Genome>& genomes,
                   const std::vector<evo::EvalOutcome>& outcomes) const override {
    for (std::size_t i = 0; i < genomes.size() && i < outcomes.size(); ++i) {
      if (!outcomes[i].ok) continue;  // failures are not cacheable facts
      stored.push_back(genomes[i].key());
      entries[genomes[i].key()] = outcomes[i].result;
    }
  }

  mutable std::map<std::string, evo::EvalResult> entries;
  mutable std::vector<std::string> stored;
  mutable std::atomic<int> lookups{0};
};

/// StubWorker that exposes a FakeFleetCache through the Worker hook, the way
/// net::RemoteWorker exposes the wire-backed tier.
class CachedStubWorker final : public StubWorker {
 public:
  const FleetEvalCache* fleet_cache() const override { return &cache; }
  FakeFleetCache cache;
};

evo::Genome genome_with(std::size_t width) {
  evo::Genome genome;
  genome.nna.hidden = {width};
  genome.grid = {8, 8, 8, 4, 4};
  return genome;
}

TEST(EvalPipeline, FastPathMatchesWorkerBatchDispatch) {
  // No duplicates, no cache: each slot carries exactly the worker's own
  // deterministic result, and every genome is evaluated once.
  StubWorker worker;
  util::ThreadPool pool(2);
  const std::vector<evo::Genome> genomes = {genome_with(16), genome_with(32), genome_with(64)};
  const std::vector<evo::EvalOutcome> outcomes = EvalPipeline(worker).evaluate(genomes, pool);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(worker.evaluations.load(), 3);
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok);
    EXPECT_DOUBLE_EQ(outcomes[i].result.accuracy,
                     static_cast<double>(genomes[i].nna.hidden.front()) / 100.0);
  }
}

TEST(EvalPipeline, DuplicateSlotsShareOneBitIdenticalEvaluation) {
  StubWorker worker;
  util::ThreadPool pool(2);
  const evo::Genome a = genome_with(16);
  const evo::Genome b = genome_with(32);
  const std::vector<evo::Genome> genomes = {a, b, a, a, b};
  const std::vector<evo::EvalOutcome> outcomes = EvalPipeline(worker).evaluate(genomes, pool);
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_EQ(worker.evaluations.load(), 2);  // a and b, once each
  // Duplicate slots are fanned out from ONE evaluation, so even the
  // wall-clock eval_seconds bits agree — the strongest identity available.
  for (const std::size_t slot : {2u, 3u}) {
    EXPECT_EQ(bits_of(outcomes[slot].result.accuracy), bits_of(outcomes[0].result.accuracy));
    EXPECT_EQ(bits_of(outcomes[slot].result.eval_seconds),
              bits_of(outcomes[0].result.eval_seconds));
  }
  EXPECT_EQ(bits_of(outcomes[4].result.eval_seconds), bits_of(outcomes[1].result.eval_seconds));
}

TEST(EvalPipeline, LegacyDedupShimDelegatesToThePipeline) {
  // evaluate_batch_deduped is the pipeline with the cache stage off; same
  // collapse count, same per-slot results, same dedup-counter accounting.
  util::Counter& collapsed = util::metrics().counter("core.dedup_collapsed_total");
  StubWorker worker;
  util::ThreadPool pool(2);
  const evo::Genome a = genome_with(16);
  const std::vector<evo::Genome> genomes = {a, a, a};

  const double before = collapsed.value();
  const std::vector<evo::EvalOutcome> outcomes = evaluate_batch_deduped(worker, genomes, pool);
  EXPECT_DOUBLE_EQ(collapsed.value(), before + 2.0);
  EXPECT_EQ(worker.evaluations.load(), 1);
  ASSERT_EQ(outcomes.size(), 3u);
  for (const evo::EvalOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok);
    EXPECT_DOUBLE_EQ(outcome.result.accuracy, 0.16);
  }

  // A duplicate-free chunk must not touch the counter (fast path).
  const double mid = collapsed.value();
  evaluate_batch_deduped(worker, {genome_with(24), genome_with(48)}, pool);
  EXPECT_DOUBLE_EQ(collapsed.value(), mid);
}

TEST(EvalPipeline, FailedSlotsCarryTheirErrorThroughDedup) {
  StubWorker worker;
  util::ThreadPool pool(2);
  const evo::Genome poisoned = genome_with(13);
  const std::vector<evo::Genome> genomes = {poisoned, genome_with(16), poisoned};
  const std::vector<evo::EvalOutcome> outcomes = EvalPipeline(worker).evaluate(genomes, pool);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_NE(outcomes[0].error.find("poisoned"), std::string::npos);
  EXPECT_TRUE(outcomes[1].ok);
  EXPECT_FALSE(outcomes[2].ok);
  EXPECT_EQ(worker.evaluations.load(), 2);  // the poisoned genome failed once, not twice
}

TEST(EvalPipeline, CacheHitsSkipDispatchAndReturnTheCachedBits) {
  CachedStubWorker worker;
  util::ThreadPool pool(2);
  const evo::Genome a = genome_with(16);
  const evo::Genome b = genome_with(32);
  evo::EvalResult cached;
  cached.accuracy = 0.5625;
  cached.eval_seconds = 1.25;
  worker.cache.entries[a.key()] = cached;

  const std::vector<evo::EvalOutcome> outcomes = EvalPipeline(worker).evaluate({a, b}, pool);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(worker.evaluations.load(), 1);  // only b dispatched
  ASSERT_TRUE(outcomes[0].ok);
  EXPECT_EQ(bits_of(outcomes[0].result.accuracy), bits_of(cached.accuracy));
  EXPECT_EQ(bits_of(outcomes[0].result.eval_seconds), bits_of(cached.eval_seconds));
  ASSERT_TRUE(outcomes[1].ok);
  EXPECT_DOUBLE_EQ(outcomes[1].result.accuracy, 0.32);
}

TEST(EvalPipeline, OnlyFreshDispatchSuccessesArePublished) {
  CachedStubWorker worker;
  util::ThreadPool pool(2);
  const evo::Genome hit = genome_with(16);
  const evo::Genome fresh = genome_with(32);
  const evo::Genome poisoned = genome_with(13);
  worker.cache.entries[hit.key()] = evo::EvalResult{};

  EvalPipeline(worker).evaluate({hit, fresh, poisoned}, pool);
  // The hit is already a fleet-wide fact and the failure is not a fact at
  // all; only the fresh success lands in the store log.
  ASSERT_EQ(worker.cache.stored.size(), 1u);
  EXPECT_EQ(worker.cache.stored[0], fresh.key());
}

TEST(EvalPipeline, FullyCachedChunkDispatchesNothing) {
  CachedStubWorker worker;
  util::ThreadPool pool(2);
  const evo::Genome a = genome_with(16);
  worker.cache.entries[a.key()] = evo::EvalResult{};
  const std::vector<evo::EvalOutcome> outcomes = EvalPipeline(worker).evaluate({a, a}, pool);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_TRUE(outcomes[1].ok);
  EXPECT_EQ(worker.evaluations.load(), 0);
  EXPECT_TRUE(worker.cache.stored.empty());
}

TEST(EvalPipeline, DedupCollapsesBeforeTheCacheSeesTheChunk) {
  CachedStubWorker worker;
  util::ThreadPool pool(2);
  const evo::Genome a = genome_with(16);
  const std::vector<evo::EvalOutcome> outcomes =
      EvalPipeline(worker).evaluate({a, a, a, genome_with(32)}, pool);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(worker.cache.lookups.load(), 1);  // one lookup over the UNIQUE chunk
  EXPECT_EQ(worker.evaluations.load(), 2);
  // Both unique successes were published exactly once.
  EXPECT_EQ(worker.cache.stored.size(), 2u);
}

TEST(EvalPipeline, OptionsDisableTheCacheStage) {
  CachedStubWorker worker;
  util::ThreadPool pool(2);
  const evo::Genome a = genome_with(16);
  worker.cache.entries[a.key()] = evo::EvalResult{};
  EvalPipelineOptions options;
  options.fleet_cache = false;
  const std::vector<evo::EvalOutcome> outcomes =
      EvalPipeline(worker, options).evaluate({a}, pool);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(worker.evaluations.load(), 1);  // dispatched despite the cached entry
  EXPECT_EQ(worker.cache.lookups.load(), 0);
}

TEST(EvalPipeline, WorkersWithoutACacheExposeNullptr) {
  StubWorker worker;
  EXPECT_EQ(worker.fleet_cache(), nullptr);
}

TEST(EvalPipeline, MalformedBackendAnswerPropagatesVerbatim) {
  // A worker returning the wrong slot count is the engine's size check's
  // problem; the pipeline must hand it through unmodified, exactly like the
  // legacy dedup path did.
  class BrokenWorker final : public Worker {
   public:
    std::string name() const override { return "broken"; }
    evo::EvalResult evaluate(const evo::Genome&) const override { return {}; }
    std::vector<evo::EvalOutcome> evaluate_batch(const std::vector<evo::Genome>&,
                                                 util::ThreadPool&) const override {
      return std::vector<evo::EvalOutcome>(1);
    }
  };
  BrokenWorker worker;
  util::ThreadPool pool(2);
  const evo::Genome a = genome_with(16);
  const std::vector<evo::EvalOutcome> outcomes =
      EvalPipeline(worker).evaluate({a, a, genome_with(32)}, pool);
  EXPECT_EQ(outcomes.size(), 1u);  // the malformed answer, not a fan-out
}

}  // namespace
}  // namespace ecad::core
