#include "core/experiment.h"

#include <gtest/gtest.h>

namespace ecad::core {
namespace {

util::Config demo_config() {
  return util::Config::parse(R"ini(
[dataset]
benchmark = credit-g
sample_scale = 0.3
seed = 2

[nna]
min_layers = 1
max_layers = 2
widths = 8, 16

[hardware]
target = arria10
ddr_banks = 2
batch = 128

[train]
epochs = 5

[search]
fitness = accuracy_x_throughput
population = 4
evaluations = 8
seed = 9
threads = 1
)ini");
}

TEST(Experiment, SetupBindsAllSections) {
  const ExperimentSetup setup = setup_from_config(demo_config());
  EXPECT_EQ(setup.benchmark, data::Benchmark::CreditG);
  EXPECT_EQ(setup.hardware_target, "arria10");
  EXPECT_EQ(setup.ddr_banks, 2u);
  EXPECT_EQ(setup.batch, 128u);
  EXPECT_EQ(setup.train_options.epochs, 5u);
  EXPECT_EQ(setup.request.evolution.population_size, 4u);
  EXPECT_EQ(setup.request.evolution.max_evaluations, 8u);
  EXPECT_EQ(setup.request.fitness, "accuracy_x_throughput");
  EXPECT_EQ(setup.request.space.max_hidden_layers, 2u);
  EXPECT_EQ(setup.request.space.width_choices, (std::vector<std::size_t>{8, 16}));
  EXPECT_TRUE(setup.request.space.search_hardware);
  EXPECT_GT(setup.split.train.num_samples(), 0u);
}

TEST(Experiment, MissingBenchmarkThrows) {
  EXPECT_THROW(setup_from_config(util::Config::parse("[dataset]\nx = 1\n")), std::out_of_range);
  EXPECT_THROW(setup_from_config(util::Config::parse("[dataset]\nbenchmark = bogus\n")),
               std::invalid_argument);
}

TEST(Experiment, NegativeWidthThrows) {
  util::Config config = demo_config();
  config.set("nna", "widths", "8, -4");
  EXPECT_THROW(setup_from_config(config), std::invalid_argument);
}

TEST(Experiment, WorkerFactoryCoversAllTargets) {
  util::Config config = demo_config();
  for (const char* target : {"accuracy", "arria10", "stratix10", "m5000", "titanx", "radeon7"}) {
    config.set("hardware", "target", target);
    const ExperimentSetup setup = setup_from_config(config);
    const auto worker = make_worker(setup);
    ASSERT_NE(worker, nullptr) << target;
  }
  config.set("hardware", "target", "tpu");
  const ExperimentSetup setup = setup_from_config(config);
  EXPECT_THROW(make_worker(setup), std::invalid_argument);
}

TEST(Experiment, GpuTargetsFreezeHardwareHalf) {
  util::Config config = demo_config();
  config.set("hardware", "target", "titanx");
  const ExperimentSetup setup = setup_from_config(config);
  EXPECT_FALSE(setup.request.space.search_hardware);
}

TEST(Experiment, EndToEndRunProducesCandidates) {
  const ExperimentOutcome outcome = run_experiment(demo_config());
  EXPECT_GE(outcome.result.stats.models_evaluated, 4u);
  EXPECT_FALSE(outcome.result.history.empty());
  EXPECT_GT(outcome.result.best.result.accuracy, 0.4);
  EXPECT_NE(outcome.worker_name.find("hw-db"), std::string::npos);
}

}  // namespace
}  // namespace ecad::core
