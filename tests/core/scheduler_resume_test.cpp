// Scheduler-level crash safety: checkpointing searches through the
// FairShareGate, journaled admissions, drain-canceled searches staying
// resumable, and resume_submit() continuing a search bit-identically.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/search_scheduler.h"

namespace ecad::core {
namespace {

class SlowAnalyticWorker final : public Worker {
 public:
  explicit SlowAnalyticWorker(int delay_ms = 0) : delay_ms_(delay_ms) {}

  std::string name() const override { return "slow-analytic"; }

  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    if (delay_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    }
    evo::EvalResult result;
    result.accuracy = 0.5 + 0.1 * static_cast<double>(genome.nna.hidden.size());
    result.outputs_per_second = 1e6 / static_cast<double>(genome.grid.dsp_usage());
    return result;
  }

 private:
  int delay_ms_ = 0;
};

SearchRequest small_request(std::uint64_t seed, std::size_t evaluations) {
  SearchRequest request;
  request.seed = seed;
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = evaluations;
  request.evolution.batch_size = 3;
  request.threads = 1;
  return request;
}

// mkdtemp, not a fixed name: the submission journal is append-only, so a
// reused directory would leak state between test-binary invocations.
std::string make_temp_dir(const std::string& stem) {
  std::string templ = ::testing::TempDir() + "sched_resume_" + stem + "_XXXXXX";
  if (::mkdtemp(templ.data()) == nullptr) {
    ADD_FAILURE() << "mkdtemp failed for " << templ;
  }
  return templ;
}

class OutcomeBox {
 public:
  void put(const SearchOutcome& outcome) {
    std::lock_guard<std::mutex> lock(mutex_);
    outcome_ = outcome;
    done_ = true;
    cv_.notify_all();
  }
  SearchOutcome take() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return done_; });
    return outcome_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  SearchOutcome outcome_;
  bool done_ = false;
};

void expect_same_record(const evo::EvolutionResult& a, const evo::EvolutionResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].genome, b.history[i].genome) << "history[" << i << "]";
    EXPECT_EQ(a.history[i].fitness, b.history[i].fitness);
  }
  EXPECT_EQ(a.best.genome, b.best.genome);
  EXPECT_EQ(a.best.fitness, b.best.fitness);
  EXPECT_EQ(a.stats.models_evaluated, b.stats.models_evaluated);
  EXPECT_EQ(a.stats.duplicates_skipped, b.stats.duplicates_skipped);
}

evo::EvolutionResult run_uninterrupted(const SearchRequest& request) {
  SlowAnalyticWorker worker;
  SearchScheduler scheduler(worker, {});
  OutcomeBox box;
  scheduler.submit(
      request, [](const SearchProgressInfo&) {},
      [&box](const SearchOutcome& outcome) { box.put(outcome); });
  const SearchOutcome outcome = box.take();
  EXPECT_EQ(outcome.state, SearchState::Completed);
  return outcome.result;
}

TEST(SchedulerCheckpoint, CompletedSearchLeavesDoneMarkerAndJournalEntry) {
  const std::string dir = make_temp_dir("complete");
  SlowAnalyticWorker worker;
  SearchSchedulerOptions options;
  options.checkpoint.dir = dir;
  SearchScheduler scheduler(worker, options);
  OutcomeBox box;
  const std::uint64_t id = scheduler.submit(
      small_request(3, 18), [](const SearchProgressInfo&) {},
      [&box](const SearchOutcome& outcome) { box.put(outcome); });
  EXPECT_EQ(box.take().state, SearchState::Completed);

  // Terminal: nothing to resume, but the journal still names the search.
  EXPECT_TRUE(scan_checkpoint_dir(dir).empty());
  EXPECT_NO_THROW(util::read_file_bytes(done_marker_path(dir, id)));
  const auto journaled = SubmissionJournal::load(SubmissionJournal::journal_path(dir));
  ASSERT_EQ(journaled.size(), 1u);
  EXPECT_EQ(journaled[0].search_id, id);
}

TEST(SchedulerCheckpoint, DrainCanceledSearchResumesBitIdentically) {
  const SearchRequest request = small_request(5, 36);
  const evo::EvolutionResult baseline = run_uninterrupted(request);

  const std::string dir = make_temp_dir("drain");
  OutcomeBox interrupted;
  {
    SlowAnalyticWorker slow(/*delay_ms=*/10);
    SearchSchedulerOptions options;
    options.checkpoint.dir = dir;
    SearchScheduler scheduler(slow, options);
    std::mutex mutex;
    std::condition_variable cv;
    bool progressed = false;
    scheduler.submit(
        request,
        [&](const SearchProgressInfo&) {
          std::lock_guard<std::mutex> lock(mutex);
          progressed = true;
          cv.notify_all();
        },
        [&interrupted](const SearchOutcome& outcome) { interrupted.put(outcome); });
    // Wait for a generation boundary (=> a checkpoint on disk), then let the
    // scheduler destructor drain mid-search.
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return progressed; });
  }
  const SearchOutcome canceled = interrupted.take();
  ASSERT_EQ(canceled.state, SearchState::Canceled) << canceled.message;

  // The drained search kept its checkpoint — the whole point of the
  // drain-vs-client-cancel distinction.
  const std::vector<ResumableSearch> resumables = scan_checkpoint_dir(dir);
  ASSERT_EQ(resumables.size(), 1u);
  ASSERT_TRUE(resumables[0].has_snapshot);

  SlowAnalyticWorker fast;  // delay differs; results must not
  SearchSchedulerOptions options;
  options.checkpoint.dir = dir;
  SearchScheduler scheduler(fast, options);
  OutcomeBox resumed;
  scheduler.resume_submit(
      resumables[0], [](const SearchProgressInfo&) {},
      [&resumed](const SearchOutcome& outcome) { resumed.put(outcome); });
  const SearchOutcome outcome = resumed.take();
  ASSERT_EQ(outcome.state, SearchState::Completed) << outcome.message;
  expect_same_record(baseline, outcome.result);
  EXPECT_TRUE(scan_checkpoint_dir(dir).empty()) << "resumed search left a live checkpoint";
}

TEST(SchedulerCheckpoint, JournalOnlySearchIsReadmittedFromScratch) {
  const SearchRequest request = small_request(9, 18);
  const evo::EvolutionResult baseline = run_uninterrupted(request);

  // A journal entry with no checkpoint: accepted, never started.
  const std::string dir = make_temp_dir("journal_only");
  {
    SubmissionJournal journal(SubmissionJournal::journal_path(dir));
    journal.append(4, request);
  }
  const std::vector<ResumableSearch> resumables = scan_checkpoint_dir(dir);
  ASSERT_EQ(resumables.size(), 1u);
  EXPECT_FALSE(resumables[0].has_snapshot);

  SlowAnalyticWorker worker;
  SearchSchedulerOptions options;
  options.checkpoint.dir = dir;
  SearchScheduler scheduler(worker, options);
  OutcomeBox box;
  const std::uint64_t id = scheduler.resume_submit(
      resumables[0], [](const SearchProgressInfo&) {},
      [&box](const SearchOutcome& outcome) { box.put(outcome); });
  EXPECT_EQ(id, 4u) << "resume must keep the original search id";
  const SearchOutcome outcome = box.take();
  ASSERT_EQ(outcome.state, SearchState::Completed) << outcome.message;
  expect_same_record(baseline, outcome.result);
}

TEST(SchedulerCheckpoint, NewSubmissionsContinueAboveResumedIds) {
  const std::string dir = make_temp_dir("id_continuity");
  {
    SubmissionJournal journal(SubmissionJournal::journal_path(dir));
    journal.append(7, small_request(1, 12));
  }
  SlowAnalyticWorker worker;
  SearchSchedulerOptions options;
  options.checkpoint.dir = dir;
  SearchScheduler scheduler(worker, options);
  OutcomeBox resumed_box;
  const std::vector<ResumableSearch> resumables = scan_checkpoint_dir(dir);
  ASSERT_EQ(resumables.size(), 1u);
  scheduler.resume_submit(
      resumables[0], [](const SearchProgressInfo&) {},
      [&resumed_box](const SearchOutcome& outcome) { resumed_box.put(outcome); });
  OutcomeBox new_box;
  const std::uint64_t new_id = scheduler.submit(
      small_request(2, 12), [](const SearchProgressInfo&) {},
      [&new_box](const SearchOutcome& outcome) { new_box.put(outcome); });
  EXPECT_GT(new_id, 7u) << "fresh ids must not collide with resumed ones";
  const SearchOutcome resumed_outcome = resumed_box.take();
  EXPECT_EQ(resumed_outcome.state, SearchState::Completed) << resumed_outcome.message;
  const SearchOutcome new_outcome = new_box.take();
  EXPECT_EQ(new_outcome.state, SearchState::Completed) << new_outcome.message;
}

TEST(SchedulerCheckpoint, DuplicateResumeIdRejected) {
  const std::string dir = make_temp_dir("dup");
  {
    SubmissionJournal journal(SubmissionJournal::journal_path(dir));
    journal.append(3, small_request(1, 600));
  }
  SlowAnalyticWorker slow(/*delay_ms=*/5);
  SearchSchedulerOptions options;
  options.checkpoint.dir = dir;
  SearchScheduler scheduler(slow, options);
  const std::vector<ResumableSearch> resumables = scan_checkpoint_dir(dir);
  ASSERT_EQ(resumables.size(), 1u);
  OutcomeBox box;
  scheduler.resume_submit(
      resumables[0], [](const SearchProgressInfo&) {},
      [&box](const SearchOutcome& outcome) { box.put(outcome); });
  EXPECT_THROW(scheduler.resume_submit(
                   resumables[0], [](const SearchProgressInfo&) {},
                   [](const SearchOutcome&) {}),
               std::runtime_error);
}

}  // namespace
}  // namespace ecad::core
