#include "data/benchmarks.h"

#include <gtest/gtest.h>

namespace ecad::data {
namespace {

TEST(Benchmarks, AllSixPresent) {
  EXPECT_EQ(all_benchmarks().size(), 6u);
}

TEST(Benchmarks, NamesRoundTrip) {
  for (Benchmark benchmark : all_benchmarks()) {
    const BenchmarkInfo& info = benchmark_info(benchmark);
    EXPECT_EQ(benchmark_from_name(info.name), benchmark);
  }
  EXPECT_THROW(benchmark_from_name("cifar10"), std::invalid_argument);
}

TEST(Benchmarks, ShapesMatchRealDatasets) {
  EXPECT_EQ(benchmark_info(Benchmark::CreditG).num_features, 20u);
  EXPECT_EQ(benchmark_info(Benchmark::CreditG).num_classes, 2u);
  EXPECT_EQ(benchmark_info(Benchmark::Har).num_features, 561u);
  EXPECT_EQ(benchmark_info(Benchmark::Har).num_classes, 6u);
  EXPECT_EQ(benchmark_info(Benchmark::Phishing).num_features, 30u);
  EXPECT_EQ(benchmark_info(Benchmark::Bioresponse).num_features, 1776u);
  EXPECT_EQ(benchmark_info(Benchmark::Mnist).num_features, 784u);
  EXPECT_EQ(benchmark_info(Benchmark::Mnist).num_classes, 10u);
  EXPECT_EQ(benchmark_info(Benchmark::FashionMnist).num_features, 784u);
}

TEST(Benchmarks, PaperRecordsTranscribed) {
  // Spot-check Table I/II/III transcriptions.
  EXPECT_DOUBLE_EQ(benchmark_info(Benchmark::CreditG).paper.ecad_mlp, 0.7880);
  EXPECT_DOUBLE_EQ(benchmark_info(Benchmark::Phishing).paper.top_acc_any, 0.9753);
  EXPECT_DOUBLE_EQ(benchmark_info(Benchmark::Mnist).paper.ecad_mlp, 0.9852);
  EXPECT_EQ(benchmark_info(Benchmark::CreditG).paper.models_evaluated, 10480u);
  EXPECT_DOUBLE_EQ(benchmark_info(Benchmark::FashionMnist).paper.avg_eval_seconds, 82.55);
}

TEST(Benchmarks, OnlyImageSetsArePresplit) {
  EXPECT_TRUE(benchmark_info(Benchmark::Mnist).presplit);
  EXPECT_TRUE(benchmark_info(Benchmark::FashionMnist).presplit);
  EXPECT_FALSE(benchmark_info(Benchmark::CreditG).presplit);
  EXPECT_FALSE(benchmark_info(Benchmark::Har).presplit);
}

TEST(Benchmarks, SpecShapesMatchInfo) {
  for (Benchmark benchmark : all_benchmarks()) {
    const auto spec = benchmark_spec(benchmark);
    const auto& info = benchmark_info(benchmark);
    EXPECT_EQ(spec.num_features, info.num_features) << info.name;
    EXPECT_EQ(spec.num_classes, info.num_classes) << info.name;
    EXPECT_GT(spec.num_samples, 100u) << info.name;
  }
}

TEST(Benchmarks, SampleScaleScalesCardinality) {
  const auto full = benchmark_spec(Benchmark::Har, 1.0);
  const auto half = benchmark_spec(Benchmark::Har, 0.5);
  EXPECT_NEAR(static_cast<double>(half.num_samples),
              static_cast<double>(full.num_samples) * 0.5, 1.0);
}

TEST(Benchmarks, LoadIsDeterministicPerSeed) {
  const Dataset a = load_benchmark(Benchmark::CreditG, 1.0, 5);
  const Dataset b = load_benchmark(Benchmark::CreditG, 1.0, 5);
  const Dataset c = load_benchmark(Benchmark::CreditG, 1.0, 6);
  EXPECT_EQ(a.features, b.features);
  EXPECT_NE(a.features, c.features);
}

TEST(Benchmarks, DifferentBenchmarksUseDifferentStreams) {
  const Dataset credit = load_benchmark(Benchmark::CreditG, 1.0, 5);
  const Dataset phishing = load_benchmark(Benchmark::Phishing, 1.0, 5);
  EXPECT_NE(credit.num_features(), phishing.num_features());
}

TEST(Benchmarks, SplitIsStandardized) {
  const TrainTestSplit split = load_benchmark_split(Benchmark::CreditG, 1.0, 5);
  // Train features should be ~zero-mean per column after standardization.
  for (std::size_t c = 0; c < split.train.num_features(); ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < split.train.num_samples(); ++r) {
      sum += split.train.features.at(r, c);
    }
    EXPECT_NEAR(sum / static_cast<double>(split.train.num_samples()), 0.0, 1e-3);
  }
}

TEST(Benchmarks, CreditGIsImbalanced) {
  const Dataset pool = load_benchmark(Benchmark::CreditG, 1.0, 5);
  EXPECT_GT(pool.majority_fraction(), 0.55);  // 0.7/0.3 priors + label noise
}

}  // namespace
}  // namespace ecad::data
