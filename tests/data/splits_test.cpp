#include "data/splits.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/synthetic.h"

namespace ecad::data {
namespace {

Dataset make_pool(std::size_t n, std::uint64_t seed = 1) {
  SyntheticSpec spec;
  spec.num_samples = n;
  spec.num_features = 4;
  spec.num_classes = 3;
  spec.latent_dim = 3;
  util::Rng rng(seed);
  return generate_synthetic(spec, rng);
}

TEST(StratifiedSplit, PartitionSizes) {
  const Dataset pool = make_pool(200);
  util::Rng rng(2);
  const TrainTestSplit split = stratified_split(pool, 0.25, rng);
  EXPECT_EQ(split.train.num_samples() + split.test.num_samples(), 200u);
  EXPECT_NEAR(static_cast<double>(split.test.num_samples()), 50.0, 3.0);
}

TEST(StratifiedSplit, PreservesClassBalance) {
  const Dataset pool = make_pool(300);
  util::Rng rng(3);
  const TrainTestSplit split = stratified_split(pool, 0.2, rng);
  const auto pool_counts = pool.class_counts();
  const auto test_counts = split.test.class_counts();
  for (std::size_t c = 0; c < pool.num_classes; ++c) {
    const double expected = static_cast<double>(pool_counts[c]) * 0.2;
    EXPECT_NEAR(static_cast<double>(test_counts[c]), expected, 2.0);
  }
}

TEST(StratifiedSplit, InvalidFractionThrows) {
  const Dataset pool = make_pool(10);
  util::Rng rng(1);
  EXPECT_THROW(stratified_split(pool, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split(pool, 1.0, rng), std::invalid_argument);
}

TEST(StratifiedKFold, EverySampleInExactlyOneTestFold) {
  const Dataset pool = make_pool(103);
  util::Rng rng(5);
  const auto folds = stratified_kfold(pool, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> test_count(103, 0);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), 103u);
    for (std::size_t index : fold.test) ++test_count[index];
    // train and test are disjoint
    std::set<std::size_t> train_set(fold.train.begin(), fold.train.end());
    for (std::size_t index : fold.test) EXPECT_EQ(train_set.count(index), 0u);
  }
  for (int count : test_count) EXPECT_EQ(count, 1);
}

TEST(StratifiedKFold, FoldSizesNearlyEqual) {
  const Dataset pool = make_pool(100);
  util::Rng rng(7);
  const auto folds = stratified_kfold(pool, 10, rng);
  for (const auto& fold : folds) {
    EXPECT_GE(fold.test.size(), 8u);
    EXPECT_LE(fold.test.size(), 12u);
  }
}

TEST(StratifiedKFold, StratificationHolds) {
  const Dataset pool = make_pool(300);
  util::Rng rng(9);
  const auto folds = stratified_kfold(pool, 5, rng);
  const auto pool_counts = pool.class_counts();
  for (const auto& fold : folds) {
    const Dataset test = pool.subset(fold.test);
    const auto counts = test.class_counts();
    for (std::size_t c = 0; c < pool.num_classes; ++c) {
      const double expected = static_cast<double>(pool_counts[c]) / 5.0;
      EXPECT_NEAR(static_cast<double>(counts[c]), expected, 2.0);
    }
  }
}

TEST(StratifiedKFold, DegenerateParamsThrow) {
  const Dataset pool = make_pool(10);
  util::Rng rng(1);
  EXPECT_THROW(stratified_kfold(pool, 1, rng), std::invalid_argument);
  EXPECT_THROW(stratified_kfold(pool, 11, rng), std::invalid_argument);
}

TEST(MaterializeFold, BuildsConsistentDatasets) {
  const Dataset pool = make_pool(60);
  util::Rng rng(11);
  const auto folds = stratified_kfold(pool, 3, rng);
  const TrainTestSplit split = materialize_fold(pool, folds[0]);
  EXPECT_EQ(split.train.num_samples(), folds[0].train.size());
  EXPECT_EQ(split.test.num_samples(), folds[0].test.size());
  split.train.validate();
  split.test.validate();
}

}  // namespace
}  // namespace ecad::data
