#include "data/arff.h"

#include <gtest/gtest.h>

namespace ecad::data {
namespace {

constexpr const char* kCreditLike = R"arff(
% OpenML-style sample
@relation credit-sample
@attribute duration numeric
@attribute amount real
@attribute 'employment years' integer
@attribute class {good, bad}
@data
6, 1169.0, 5, good
48, 5951.5, 3, bad
12, 2096, 4, good
)arff";

TEST(Arff, ParsesNumericAndNominal) {
  const Dataset dataset = parse_arff(kCreditLike);
  EXPECT_EQ(dataset.name, "credit-sample");
  EXPECT_EQ(dataset.num_samples(), 3u);
  EXPECT_EQ(dataset.num_features(), 3u);
  EXPECT_EQ(dataset.num_classes, 2u);
  EXPECT_FLOAT_EQ(dataset.features.at(1, 1), 5951.5f);
  EXPECT_EQ(dataset.labels, (std::vector<int>{0, 1, 0}));  // good=0, bad=1
}

TEST(Arff, QuotedAttributeNames) {
  const Dataset dataset = parse_arff(kCreditLike);
  EXPECT_FLOAT_EQ(dataset.features.at(0, 2), 5.0f);
}

TEST(Arff, CommentsAndBlankLinesIgnored) {
  const Dataset dataset = parse_arff(
      "@relation r\n\n% note\n@attribute x numeric\n@attribute c {a,b}\n@data\n\n1, a\n");
  EXPECT_EQ(dataset.num_samples(), 1u);
}

TEST(Arff, NominalFeatureEncodedAsId) {
  const Dataset dataset = parse_arff(
      "@relation r\n@attribute color {red, green, blue}\n@attribute c {n, y}\n@data\n"
      "green, y\nred, n\nblue, y\n");
  EXPECT_FLOAT_EQ(dataset.features.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(dataset.features.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(dataset.features.at(2, 0), 2.0f);
}

TEST(Arff, MissingValuesImputedAsZero) {
  const Dataset dataset =
      parse_arff("@relation r\n@attribute x numeric\n@attribute c {a,b}\n@data\n?, b\n");
  EXPECT_FLOAT_EQ(dataset.features.at(0, 0), 0.0f);
  EXPECT_EQ(dataset.labels[0], 1);
}

TEST(Arff, CustomLabelColumn) {
  const Dataset dataset = parse_arff(
      "@relation r\n@attribute c {a,b}\n@attribute x numeric\n@data\nb, 3.5\n",
      /*label_column=*/0);
  EXPECT_EQ(dataset.labels[0], 1);
  EXPECT_FLOAT_EQ(dataset.features.at(0, 0), 3.5f);
}

TEST(Arff, NumericClassColumnEnumerated) {
  const Dataset dataset = parse_arff(
      "@relation r\n@attribute x numeric\n@attribute y numeric\n@data\n1, 7\n2, 9\n3, 7\n");
  EXPECT_EQ(dataset.num_classes, 2u);
  EXPECT_EQ(dataset.labels, (std::vector<int>{0, 1, 0}));
}

TEST(Arff, MalformedInputThrows) {
  EXPECT_THROW(parse_arff("@attribute x numeric\n@data\n1, 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_arff("@relation r\n@attribute x funky\n@data\n1\n"), std::invalid_argument);
  EXPECT_THROW(parse_arff("@relation r\n@attribute c {a\n@data\na\n"), std::invalid_argument);
  EXPECT_THROW(parse_arff("@relation r\n@attribute x numeric\n@attribute c {a,b}\n@data\n1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_arff("@relation r\n@attribute c {a,b}\n@data\nz\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_arff(""), std::invalid_argument);
}

TEST(Arff, MissingFileThrows) {
  EXPECT_THROW(load_arff("/definitely/not/here.arff"), std::runtime_error);
}

}  // namespace
}  // namespace ecad::data
