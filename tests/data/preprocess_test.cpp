#include "data/preprocess.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ecad::data {
namespace {

TEST(Standardizer, ZeroMeanUnitVariance) {
  linalg::Matrix features{{1.0f, 10.0f}, {3.0f, 20.0f}, {5.0f, 30.0f}};
  Standardizer standardizer;
  standardizer.fit(features);
  standardizer.transform(features);
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t r = 0; r < 3; ++r) {
      sum += features.at(r, c);
      sum_sq += features.at(r, c) * features.at(r, c);
    }
    EXPECT_NEAR(sum / 3.0, 0.0, 1e-5);
    EXPECT_NEAR(sum_sq / 3.0, 1.0, 1e-4);
  }
}

TEST(Standardizer, ConstantFeatureMapsToZeroNotNaN) {
  linalg::Matrix features{{7.0f}, {7.0f}, {7.0f}};
  Standardizer standardizer;
  standardizer.fit(features);
  standardizer.transform(features);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(features.at(r, 0), 0.0f);
    EXPECT_FALSE(std::isnan(features.at(r, 0)));
  }
}

TEST(Standardizer, TransformBeforeFitThrows) {
  linalg::Matrix features(1, 1);
  const Standardizer standardizer;
  EXPECT_THROW(standardizer.transform(features), std::invalid_argument);
}

TEST(Standardizer, WidthMismatchThrows) {
  linalg::Matrix train(3, 2, 1.0f);
  Standardizer standardizer;
  standardizer.fit(train);
  linalg::Matrix wrong(3, 5);
  EXPECT_THROW(standardizer.transform(wrong), std::invalid_argument);
}

TEST(Standardizer, AppliesTrainStatisticsToTest) {
  linalg::Matrix train{{0.0f}, {2.0f}};  // mean 1, std 1
  Standardizer standardizer;
  standardizer.fit(train);
  linalg::Matrix test{{3.0f}};
  standardizer.transform(test);
  EXPECT_NEAR(test.at(0, 0), 2.0f, 1e-5);
}

TEST(MinMaxScaler, ScalesToUnitInterval) {
  linalg::Matrix features{{0.0f}, {5.0f}, {10.0f}};
  MinMaxScaler scaler;
  scaler.fit(features);
  scaler.transform(features);
  EXPECT_FLOAT_EQ(features.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(features.at(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(features.at(2, 0), 1.0f);
}

TEST(MinMaxScaler, ConstantFeatureSafe) {
  linalg::Matrix features{{4.0f}, {4.0f}};
  MinMaxScaler scaler;
  scaler.fit(features);
  scaler.transform(features);
  EXPECT_FLOAT_EQ(features.at(0, 0), 0.0f);
}

TEST(StandardizeTogether, SharedTransform) {
  Dataset train;
  train.num_classes = 2;
  train.features = linalg::Matrix{{0.0f}, {2.0f}};
  train.labels = {0, 1};
  Dataset test = train;
  test.features = linalg::Matrix{{1.0f}};
  test.labels = {0};
  standardize_together(train, {&test});
  EXPECT_NEAR(test.features.at(0, 0), 0.0f, 1e-5);  // 1.0 is the train mean
}

TEST(OneHot, EncodesLabels) {
  const linalg::Matrix encoded = one_hot({0, 2, 1}, 3);
  EXPECT_TRUE(encoded.approx_equal(
      linalg::Matrix{{1.0f, 0.0f, 0.0f}, {0.0f, 0.0f, 1.0f}, {0.0f, 1.0f, 0.0f}}));
}

TEST(OneHot, OutOfRangeLabelThrows) {
  EXPECT_THROW(one_hot({3}, 3), std::invalid_argument);
  EXPECT_THROW(one_hot({-1}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace ecad::data
