#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "baselines/logistic_regression.h"
#include "data/preprocess.h"
#include "data/splits.h"
#include "nn/metrics.h"

namespace ecad::data {
namespace {

TEST(Synthetic, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.num_samples = 150;
  spec.num_features = 12;
  spec.num_classes = 4;
  spec.latent_dim = 5;
  util::Rng rng(1);
  const Dataset dataset = generate_synthetic(spec, rng);
  EXPECT_EQ(dataset.num_samples(), 150u);
  EXPECT_EQ(dataset.num_features(), 12u);
  EXPECT_EQ(dataset.num_classes, 4u);
  dataset.validate();
}

TEST(Synthetic, DeterministicGivenSeed) {
  SyntheticSpec spec;
  spec.num_samples = 50;
  util::Rng rng1(42), rng2(42);
  const Dataset a = generate_synthetic(spec, rng1);
  const Dataset b = generate_synthetic(spec, rng2);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.features, b.features);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.num_samples = 50;
  util::Rng rng1(1), rng2(2);
  EXPECT_NE(generate_synthetic(spec, rng1).features, generate_synthetic(spec, rng2).features);
}

TEST(Synthetic, ClassPriorsRespected) {
  SyntheticSpec spec;
  spec.num_samples = 4000;
  spec.class_priors = {0.7, 0.3};
  spec.label_noise = 0.0;
  util::Rng rng(3);
  const Dataset dataset = generate_synthetic(spec, rng);
  const auto counts = dataset.class_counts();
  EXPECT_NEAR(static_cast<double>(counts[0]) / 4000.0, 0.7, 0.03);
}

TEST(Synthetic, LabelNoiseCapsAccuracyCeiling) {
  // With heavy label noise even a perfect classifier cannot exceed ~1-noise;
  // check the majority of labels still follow the cluster structure.
  SyntheticSpec easy;
  easy.num_samples = 1000;
  easy.cluster_separation = 6.0;
  easy.label_noise = 0.3;
  util::Rng rng(5);
  const Dataset noisy = generate_synthetic(easy, rng);

  easy.label_noise = 0.0;
  util::Rng rng2(5);
  const Dataset clean = generate_synthetic(easy, rng2);

  // Train a linear model on the clean set; it should do far better on clean
  // than on noisy labels (the flipped ones are unpredictable).
  util::Rng train_rng(7);
  TrainTestSplit clean_split = stratified_split(clean, 0.3, train_rng);
  standardize_together(clean_split.train, {&clean_split.test});
  baselines::LogisticRegression model;
  model.fit(clean_split.train, train_rng);
  const double clean_acc =
      nn::accuracy(model.predict(clean_split.test.features), clean_split.test.labels);
  EXPECT_GT(clean_acc, 0.9);

  TrainTestSplit noisy_split = stratified_split(noisy, 0.3, train_rng);
  standardize_together(noisy_split.train, {&noisy_split.test});
  baselines::LogisticRegression noisy_model;
  noisy_model.fit(noisy_split.train, train_rng);
  const double noisy_acc =
      nn::accuracy(noisy_model.predict(noisy_split.test.features), noisy_split.test.labels);
  EXPECT_LT(noisy_acc, 0.85);  // ceiling ~1 - 0.3 + slack
}

TEST(Synthetic, SeparationControlsDifficulty) {
  auto linear_accuracy = [](double separation) {
    SyntheticSpec spec;
    spec.num_samples = 600;
    spec.cluster_separation = separation;
    spec.clusters_per_class = 1;
    util::Rng rng(11);
    const Dataset dataset = generate_synthetic(spec, rng);
    util::Rng split_rng(13);
    TrainTestSplit split = stratified_split(dataset, 0.3, split_rng);
    standardize_together(split.train, {&split.test});
    baselines::LogisticRegression model;
    model.fit(split.train, split_rng);
    return nn::accuracy(model.predict(split.test.features), split.test.labels);
  };
  EXPECT_GT(linear_accuracy(6.0), linear_accuracy(0.5) + 0.1);
}

TEST(Synthetic, DegenerateSpecsThrow) {
  util::Rng rng(1);
  SyntheticSpec spec;
  spec.num_classes = 1;
  EXPECT_THROW(generate_synthetic(spec, rng), std::invalid_argument);
  spec = {};
  spec.num_features = 0;
  EXPECT_THROW(generate_synthetic(spec, rng), std::invalid_argument);
  spec = {};
  spec.latent_dim = 0;
  EXPECT_THROW(generate_synthetic(spec, rng), std::invalid_argument);
  spec = {};
  spec.label_noise = 1.0;
  EXPECT_THROW(generate_synthetic(spec, rng), std::invalid_argument);
  spec = {};
  spec.class_priors = {1.0};  // wrong length for 2 classes
  EXPECT_THROW(generate_synthetic(spec, rng), std::invalid_argument);
  spec = {};
  spec.class_priors = {-1.0, 2.0};
  EXPECT_THROW(generate_synthetic(spec, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ecad::data
