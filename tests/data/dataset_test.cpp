#include "data/dataset.h"

#include <gtest/gtest.h>

namespace ecad::data {
namespace {

Dataset tiny() {
  Dataset dataset;
  dataset.name = "tiny";
  dataset.num_classes = 2;
  dataset.features = linalg::Matrix{{0.0f, 1.0f}, {2.0f, 3.0f}, {4.0f, 5.0f}};
  dataset.labels = {0, 1, 0};
  return dataset;
}

TEST(Dataset, BasicAccessors) {
  const Dataset dataset = tiny();
  EXPECT_EQ(dataset.num_samples(), 3u);
  EXPECT_EQ(dataset.num_features(), 2u);
  dataset.validate();
}

TEST(Dataset, SubsetCopiesSelectedRows) {
  const Dataset dataset = tiny();
  const Dataset subset = dataset.subset({2, 0});
  ASSERT_EQ(subset.num_samples(), 2u);
  EXPECT_FLOAT_EQ(subset.features.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(subset.features.at(1, 1), 1.0f);
  EXPECT_EQ(subset.labels, (std::vector<int>{0, 0}));
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  EXPECT_THROW(tiny().subset({5}), std::out_of_range);
}

TEST(Dataset, ClassCountsAndMajority) {
  const Dataset dataset = tiny();
  EXPECT_EQ(dataset.class_counts(), (std::vector<std::size_t>{2, 1}));
  EXPECT_NEAR(dataset.majority_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(Dataset, ValidateCatchesBadLabels) {
  Dataset dataset = tiny();
  dataset.labels[0] = 7;
  EXPECT_THROW(dataset.validate(), std::invalid_argument);
  dataset.labels[0] = -1;
  EXPECT_THROW(dataset.validate(), std::invalid_argument);
}

TEST(Dataset, ValidateCatchesRowMismatch) {
  Dataset dataset = tiny();
  dataset.labels.pop_back();
  EXPECT_THROW(dataset.validate(), std::invalid_argument);
}

TEST(ParseCsvDataset, NumericLabels) {
  const Dataset dataset = parse_csv_dataset("f0,f1,label\n0.5,1.5,0\n2.5,3.5,1\n");
  EXPECT_EQ(dataset.num_samples(), 2u);
  EXPECT_EQ(dataset.num_features(), 2u);
  EXPECT_EQ(dataset.num_classes, 2u);
  EXPECT_FLOAT_EQ(dataset.features.at(1, 0), 2.5f);
  EXPECT_EQ(dataset.labels, (std::vector<int>{0, 1}));
}

TEST(ParseCsvDataset, StringLabelsEnumeratedInFirstSeenOrder) {
  const Dataset dataset = parse_csv_dataset("a,b,cls\n1,2,good\n3,4,bad\n5,6,good\n");
  EXPECT_EQ(dataset.labels, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(dataset.num_classes, 2u);
}

TEST(ParseCsvDataset, CustomLabelColumn) {
  const Dataset dataset = parse_csv_dataset("y,f0\n1,0.5\n0,0.7\n", true, /*label_column=*/0);
  EXPECT_EQ(dataset.labels, (std::vector<int>{1, 0}));
  EXPECT_FLOAT_EQ(dataset.features.at(1, 0), 0.7f);
}

TEST(ParseCsvDataset, RaggedRowThrows) {
  EXPECT_THROW(parse_csv_dataset("a,b,l\n1,2,0\n1,0\n"), std::invalid_argument);
}

TEST(DatasetCsv, RoundTrip) {
  const Dataset original = tiny();
  const util::CsvTable table = to_csv_table(original);
  const Dataset restored = parse_csv_dataset(util::to_csv(table));
  EXPECT_EQ(restored.num_samples(), original.num_samples());
  EXPECT_EQ(restored.labels, original.labels);
  EXPECT_TRUE(restored.features.approx_equal(original.features, 1e-4f));
}

TEST(Concatenate, StacksRows) {
  const Dataset a = tiny(), b = tiny();
  const Dataset joined = concatenate(a, b);
  EXPECT_EQ(joined.num_samples(), 6u);
  EXPECT_EQ(joined.labels[3], a.labels[0]);
  EXPECT_FLOAT_EQ(joined.features.at(5, 1), 5.0f);
}

TEST(Concatenate, SchemaMismatchThrows) {
  Dataset a = tiny();
  Dataset b = tiny();
  b.num_classes = 3;
  EXPECT_THROW(concatenate(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace ecad::data
