#include <gtest/gtest.h>

#include "baselines/classifier.h"
#include "baselines/knn.h"
#include "baselines/naive_bayes.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "nn/metrics.h"

namespace ecad::baselines {
namespace {

data::Dataset blobs(std::size_t n, std::uint64_t seed = 3) {
  data::SyntheticSpec spec;
  spec.num_samples = n;
  spec.num_features = 5;
  spec.num_classes = 3;
  spec.latent_dim = 3;
  spec.clusters_per_class = 1;
  spec.cluster_separation = 5.0;
  util::Rng rng(seed);
  return data::generate_synthetic(spec, rng);
}

TEST(Knn, OneNearestNeighbourIsPerfectOnTrainSet) {
  const data::Dataset dataset = blobs(100);
  Knn model(KnnOptions{.k = 1});
  util::Rng rng(1);
  model.fit(dataset, rng);
  EXPECT_DOUBLE_EQ(nn::accuracy(model.predict(dataset.features), dataset.labels), 1.0);
}

TEST(Knn, GeneralizesToHoldout) {
  const data::Dataset pool = blobs(300);
  util::Rng rng(2);
  const data::TrainTestSplit split = data::stratified_split(pool, 0.3, rng);
  Knn model(KnnOptions{.k = 5});
  model.fit(split.train, rng);
  EXPECT_GT(nn::accuracy(model.predict(split.test.features), split.test.labels), 0.9);
}

TEST(Knn, KLargerThanTrainSetClamps) {
  const data::Dataset dataset = blobs(10);
  Knn model(KnnOptions{.k = 100});
  util::Rng rng(3);
  model.fit(dataset, rng);
  const auto predictions = model.predict(dataset.features);
  EXPECT_EQ(predictions.size(), 10u);  // must not crash; majority vote of all
}

TEST(Knn, ZeroKThrows) {
  Knn model(KnnOptions{.k = 0});
  util::Rng rng(4);
  EXPECT_THROW(model.fit(blobs(10), rng), std::invalid_argument);
}

TEST(Knn, PredictBeforeFitThrows) {
  const Knn model;
  EXPECT_THROW(model.predict(linalg::Matrix(1, 5)), std::logic_error);
}

TEST(GaussianNB, LearnsGaussianBlobs) {
  const data::Dataset pool = blobs(400, 7);
  util::Rng rng(5);
  const data::TrainTestSplit split = data::stratified_split(pool, 0.3, rng);
  GaussianNaiveBayes model;
  model.fit(split.train, rng);
  EXPECT_GT(nn::accuracy(model.predict(split.test.features), split.test.labels), 0.9);
}

TEST(GaussianNB, PriorsInfluencePredictions) {
  // Heavily imbalanced data: with overlapping clusters NB should prefer the
  // majority class on ambiguous points.
  data::SyntheticSpec spec;
  spec.num_samples = 500;
  spec.num_features = 3;
  spec.num_classes = 2;
  spec.latent_dim = 2;
  spec.clusters_per_class = 1;
  spec.cluster_separation = 0.2;  // near-total overlap
  spec.class_priors = {0.9, 0.1};
  util::Rng rng(6);
  const data::Dataset dataset = data::generate_synthetic(spec, rng);
  GaussianNaiveBayes model;
  model.fit(dataset, rng);
  const auto predictions = model.predict(dataset.features);
  std::size_t majority = 0;
  for (int p : predictions) {
    if (p == 0) ++majority;
  }
  EXPECT_GT(majority, predictions.size() / 2);
}

TEST(GaussianNB, PredictBeforeFitThrows) {
  const GaussianNaiveBayes model;
  EXPECT_THROW(model.predict(linalg::Matrix(1, 5)), std::logic_error);
}

TEST(ClassifierProtocol, KFoldAccuracyRunsFreshModelPerFold) {
  const data::Dataset pool = blobs(200, 9);
  util::Rng rng(7);
  const double accuracy = kfold_accuracy(
      [] { return std::make_unique<Knn>(KnnOptions{.k = 3}); }, pool, 5, rng);
  EXPECT_GT(accuracy, 0.85);
  EXPECT_LE(accuracy, 1.0);
}

TEST(ClassifierProtocol, HoldoutAccuracy) {
  const data::Dataset pool = blobs(200, 11);
  util::Rng rng(8);
  data::TrainTestSplit split = data::stratified_split(pool, 0.3, rng);
  GaussianNaiveBayes model;
  EXPECT_GT(holdout_accuracy(model, split, rng), 0.85);
}

}  // namespace
}  // namespace ecad::baselines
