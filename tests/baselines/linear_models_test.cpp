#include <gtest/gtest.h>

#include "baselines/linear_svc.h"
#include "baselines/logistic_regression.h"
#include "data/preprocess.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "nn/metrics.h"

namespace ecad::baselines {
namespace {

data::Dataset separable(std::size_t n, std::size_t classes = 2, std::uint64_t seed = 5) {
  data::SyntheticSpec spec;
  spec.num_samples = n;
  spec.num_features = 6;
  spec.num_classes = classes;
  spec.latent_dim = 4;
  spec.clusters_per_class = 1;  // single cluster -> linearly separable
  spec.cluster_separation = 6.0;
  util::Rng rng(seed);
  data::Dataset dataset = data::generate_synthetic(spec, rng);
  data::standardize_together(dataset, {});
  return dataset;
}

TEST(LogisticRegression, LearnsBinarySeparable) {
  const data::Dataset dataset = separable(300);
  LogisticRegression model;
  util::Rng rng(1);
  model.fit(dataset, rng);
  EXPECT_GT(nn::accuracy(model.predict(dataset.features), dataset.labels), 0.95);
}

TEST(LogisticRegression, LearnsMulticlass) {
  const data::Dataset dataset = separable(400, 4, 7);
  LogisticRegression model;
  util::Rng rng(2);
  model.fit(dataset, rng);
  EXPECT_GT(nn::accuracy(model.predict(dataset.features), dataset.labels), 0.9);
}

TEST(LogisticRegression, PredictBeforeFitThrows) {
  const LogisticRegression model;
  EXPECT_THROW(model.predict(linalg::Matrix(1, 6)), std::logic_error);
}

TEST(LogisticRegression, EmptyDatasetThrows) {
  data::Dataset empty;
  empty.num_classes = 2;
  LogisticRegression model;
  util::Rng rng(3);
  EXPECT_THROW(model.fit(empty, rng), std::invalid_argument);
}

TEST(LinearSvc, LearnsBinarySeparable) {
  const data::Dataset dataset = separable(300, 2, 9);
  LinearSvc model;
  util::Rng rng(4);
  model.fit(dataset, rng);
  EXPECT_GT(nn::accuracy(model.predict(dataset.features), dataset.labels), 0.95);
}

TEST(LinearSvc, OneVsRestHandlesMulticlass) {
  const data::Dataset dataset = separable(400, 3, 11);
  LinearSvc model;
  util::Rng rng(5);
  model.fit(dataset, rng);
  EXPECT_GT(nn::accuracy(model.predict(dataset.features), dataset.labels), 0.9);
}

TEST(LinearSvc, GeneralizesToHoldout) {
  const data::Dataset pool = separable(400, 2, 13);
  util::Rng rng(6);
  data::TrainTestSplit split = data::stratified_split(pool, 0.3, rng);
  LinearSvc model;
  model.fit(split.train, rng);
  EXPECT_GT(nn::accuracy(model.predict(split.test.features), split.test.labels), 0.9);
}

TEST(LinearSvc, PredictBeforeFitThrows) {
  const LinearSvc model;
  EXPECT_THROW(model.predict(linalg::Matrix(1, 6)), std::logic_error);
}

TEST(LinearModels, NamesAreDescriptive) {
  EXPECT_EQ(LogisticRegression().name(), "LogisticRegression");
  EXPECT_EQ(LinearSvc().name(), "SVC(linear,ovr)");
}

}  // namespace
}  // namespace ecad::baselines
