#include "baselines/decision_tree.h"

#include <gtest/gtest.h>

#include "data/preprocess.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "nn/metrics.h"

namespace ecad::baselines {
namespace {

data::Dataset blobs(std::size_t n, double separation = 5.0, std::uint64_t seed = 3) {
  data::SyntheticSpec spec;
  spec.num_samples = n;
  spec.num_features = 6;
  spec.num_classes = 3;
  spec.latent_dim = 4;
  spec.clusters_per_class = 1;
  spec.cluster_separation = separation;
  util::Rng rng(seed);
  return data::generate_synthetic(spec, rng);
}

TEST(DecisionTree, FitsSeparableData) {
  const data::Dataset dataset = blobs(300);
  DecisionTree tree;
  util::Rng rng(1);
  tree.fit(dataset, rng);
  EXPECT_GT(nn::accuracy(tree.predict(dataset.features), dataset.labels), 0.95);
  EXPECT_GT(tree.node_count(), 1u);
}

TEST(DecisionTree, GeneralizesToHoldout) {
  const data::Dataset pool = blobs(400);
  util::Rng rng(2);
  const data::TrainTestSplit split = data::stratified_split(pool, 0.25, rng);
  DecisionTree tree;
  tree.fit(split.train, rng);
  EXPECT_GT(nn::accuracy(tree.predict(split.test.features), split.test.labels), 0.85);
}

TEST(DecisionTree, DepthLimitRespected) {
  DecisionTreeOptions options;
  options.max_depth = 2;
  DecisionTree tree(options);
  util::Rng rng(3);
  tree.fit(blobs(200), rng);
  EXPECT_LE(tree.depth(), 3u);  // depth counts nodes along the path
}

TEST(DecisionTree, StumpOnConstantLabelsIsSingleLeaf) {
  data::Dataset dataset = blobs(50);
  std::fill(dataset.labels.begin(), dataset.labels.end(), 1);
  DecisionTree tree;
  util::Rng rng(4);
  tree.fit(dataset, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  for (int label : tree.predict(dataset.features)) EXPECT_EQ(label, 1);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  const DecisionTree tree;
  EXPECT_THROW(tree.predict(linalg::Matrix(1, 2)), std::logic_error);
}

TEST(DecisionTree, EmptyDatasetThrows) {
  data::Dataset empty;
  empty.num_classes = 2;
  DecisionTree tree;
  util::Rng rng(5);
  EXPECT_THROW(tree.fit(empty, rng), std::invalid_argument);
}

TEST(DecisionTree, MinSamplesLeafLimitsGrowth) {
  DecisionTreeOptions coarse;
  coarse.min_samples_leaf = 50;
  DecisionTree coarse_tree(coarse);
  DecisionTree fine_tree;
  util::Rng rng(6);
  const data::Dataset dataset = blobs(300);
  coarse_tree.fit(dataset, rng);
  fine_tree.fit(dataset, rng);
  EXPECT_LT(coarse_tree.node_count(), fine_tree.node_count());
}

TEST(DecisionTree, RandomFeatureSubsetStillLearns) {
  DecisionTreeOptions options;
  options.max_features = 2;
  DecisionTree tree(options);
  util::Rng rng(7);
  const data::Dataset dataset = blobs(300);
  tree.fit(dataset, rng);
  EXPECT_GT(nn::accuracy(tree.predict(dataset.features), dataset.labels), 0.8);
}

}  // namespace
}  // namespace ecad::baselines
