#include "baselines/random_forest.h"

#include <gtest/gtest.h>

#include "data/splits.h"
#include "data/synthetic.h"
#include "nn/metrics.h"

namespace ecad::baselines {
namespace {

data::Dataset noisy_blobs(std::size_t n, std::uint64_t seed = 9) {
  data::SyntheticSpec spec;
  spec.num_samples = n;
  spec.num_features = 8;
  spec.num_classes = 2;
  spec.latent_dim = 4;
  spec.clusters_per_class = 2;
  spec.cluster_separation = 3.0;
  spec.label_noise = 0.05;
  util::Rng rng(seed);
  return data::generate_synthetic(spec, rng);
}

TEST(RandomForest, LearnsAndGeneralizes) {
  const data::Dataset pool = noisy_blobs(400);
  util::Rng rng(1);
  const data::TrainTestSplit split = data::stratified_split(pool, 0.25, rng);
  RandomForestOptions options;
  options.num_trees = 15;
  RandomForest forest(options);
  forest.fit(split.train, rng);
  EXPECT_EQ(forest.num_trees(), 15u);
  EXPECT_GT(nn::accuracy(forest.predict(split.test.features), split.test.labels), 0.8);
}

TEST(RandomForest, EnsembleBeatsOrMatchesSmallEnsemble) {
  const data::Dataset pool = noisy_blobs(400, 11);
  util::Rng rng(2);
  const data::TrainTestSplit split = data::stratified_split(pool, 0.3, rng);

  RandomForestOptions small;
  small.num_trees = 1;
  RandomForest one_tree(small);
  one_tree.fit(split.train, rng);
  const double single = nn::accuracy(one_tree.predict(split.test.features), split.test.labels);

  RandomForestOptions big;
  big.num_trees = 20;
  RandomForest many(big);
  many.fit(split.train, rng);
  const double ensemble = nn::accuracy(many.predict(split.test.features), split.test.labels);
  EXPECT_GE(ensemble + 0.03, single);  // allow tiny regression, expect usually better
}

TEST(RandomForest, ZeroTreesThrows) {
  RandomForestOptions options;
  options.num_trees = 0;
  RandomForest forest(options);
  util::Rng rng(3);
  EXPECT_THROW(forest.fit(noisy_blobs(50), rng), std::invalid_argument);
}

TEST(RandomForest, PredictBeforeFitThrows) {
  const RandomForest forest;
  EXPECT_THROW(forest.predict(linalg::Matrix(1, 8)), std::logic_error);
}

TEST(RandomForest, SubsampleFractionReducesBagSize) {
  RandomForestOptions options;
  options.num_trees = 3;
  options.subsample = 0.1;
  RandomForest forest(options);
  util::Rng rng(4);
  forest.fit(noisy_blobs(100), rng);  // just must not crash / must fit
  EXPECT_EQ(forest.num_trees(), 3u);
}

}  // namespace
}  // namespace ecad::baselines
