#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ecad::util {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim("nochange"), "nochange");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("Hello", "hELLO"));
  EXPECT_FALSE(iequals("hello", "helloo"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(ToLower, Lowers) { EXPECT_EQ(to_lower("AbC-12"), "abc-12"); }

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("credit-g", "credit"));
  EXPECT_FALSE(starts_with("credit", "credit-g"));
}

TEST(ParseDouble, ParsesValidTokens) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2e3 "), -2000.0);
  EXPECT_DOUBLE_EQ(parse_double("0"), 0.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW(parse_double("abc"), std::invalid_argument);
  EXPECT_THROW(parse_double("1.5x"), std::invalid_argument);
  EXPECT_THROW(parse_double(""), std::invalid_argument);
}

TEST(ParseInt, ParsesAndRejects) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_THROW(parse_int("4.5"), std::invalid_argument);
  EXPECT_THROW(parse_int("x"), std::invalid_argument);
}

TEST(ParseBool, AcceptsCommonSpellings) {
  EXPECT_TRUE(parse_bool("true"));
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_TRUE(parse_bool("Yes"));
  EXPECT_FALSE(parse_bool("false"));
  EXPECT_FALSE(parse_bool("0"));
  EXPECT_FALSE(parse_bool("off"));
  EXPECT_THROW(parse_bool("maybe"), std::invalid_argument);
}

TEST(FormatScientific, PaperStyle) {
  EXPECT_EQ(format_scientific(8190.0), "8.19E3");
  EXPECT_EQ(format_scientific(1.40e7), "1.40E7");
  EXPECT_EQ(format_scientific(0.0), "0");
}

TEST(FormatScientific, NegativeAndSmall) {
  EXPECT_EQ(format_scientific(-2500.0), "-2.50E3");
  EXPECT_EQ(format_scientific(0.0025), "2.50E-3");
}

TEST(FormatFixed, RoundsToDecimals) {
  EXPECT_EQ(format_fixed(0.98765, 4), "0.9877");
  EXPECT_EQ(format_fixed(27.0, 1), "27.0");
}

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace ecad::util
