#include "util/config.h"

#include <gtest/gtest.h>

namespace ecad::util {
namespace {

constexpr const char* kSample = R"ini(
# ECAD experiment configuration
[Dataset]
benchmark = credit-g
sample_scale = 0.5

[search]
population = 16
fitness = accuracy_x_throughput
widths = 8, 16, 32
deterministic = true
)ini";

TEST(Config, ParsesSectionsAndKeys) {
  const Config config = Config::parse(kSample);
  EXPECT_EQ(config.get("dataset", "benchmark"), "credit-g");
  EXPECT_EQ(config.get_int("search", "population", 0), 16);
}

TEST(Config, SectionAndKeyLookupIsCaseInsensitive) {
  const Config config = Config::parse(kSample);
  EXPECT_TRUE(config.has("DATASET", "BENCHMARK"));
  EXPECT_EQ(config.get("DaTaSeT", "Benchmark"), "credit-g");
}

TEST(Config, TypedAccessorsWithDefaults) {
  const Config config = Config::parse(kSample);
  EXPECT_DOUBLE_EQ(config.get_double("dataset", "sample_scale", 1.0), 0.5);
  EXPECT_DOUBLE_EQ(config.get_double("dataset", "missing", 2.5), 2.5);
  EXPECT_TRUE(config.get_bool("search", "deterministic", false));
  EXPECT_FALSE(config.get_bool("search", "absent", false));
  EXPECT_EQ(config.get_string("search", "fitness", "x"), "accuracy_x_throughput");
}

TEST(Config, IntListParsing) {
  const Config config = Config::parse(kSample);
  EXPECT_EQ(config.get_int_list("search", "widths", {}),
            (std::vector<long long>{8, 16, 32}));
  EXPECT_EQ(config.get_int_list("search", "missing", {1}), (std::vector<long long>{1}));
}

TEST(Config, MissingKeyThrows) {
  const Config config = Config::parse(kSample);
  EXPECT_THROW(config.get("dataset", "nope"), std::out_of_range);
  EXPECT_THROW(config.get("nosection", "x"), std::out_of_range);
}

TEST(Config, MalformedLinesThrow) {
  EXPECT_THROW(Config::parse("[unterminated\nx = 1\n"), std::invalid_argument);
  EXPECT_THROW(Config::parse("keywithoutvalue\n"), std::invalid_argument);
  EXPECT_THROW(Config::parse("= value\n"), std::invalid_argument);
}

TEST(Config, CommentsAndBlankLinesIgnored) {
  const Config config = Config::parse("# comment\n; also comment\n\n[a]\nx = 1\n");
  EXPECT_EQ(config.get_int("a", "x", 0), 1);
}

TEST(Config, SetAndRoundTrip) {
  Config config;
  config.set("hw", "target", "arria10");
  config.set("hw", "banks", "4");
  const Config reparsed = Config::parse(config.to_string());
  EXPECT_EQ(reparsed.get("hw", "target"), "arria10");
  EXPECT_EQ(reparsed.get_int("hw", "banks", 0), 4);
}

TEST(Config, KeysAndSectionsEnumerate) {
  const Config config = Config::parse(kSample);
  EXPECT_EQ(config.sections().size(), 2u);
  EXPECT_EQ(config.keys("search").size(), 4u);
  EXPECT_TRUE(config.keys("missing").empty());
}

TEST(Config, ValueWithEqualsSign) {
  const Config config = Config::parse("[a]\nexpr = m=k*n\n");
  EXPECT_EQ(config.get("a", "expr"), "m=k*n");
}

}  // namespace
}  // namespace ecad::util
