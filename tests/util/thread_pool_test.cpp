#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

namespace ecad::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForRethrowsFirstErrorInIndexOrder) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(16, [](std::size_t i) {
      if (i == 2) throw std::logic_error("index 2");
      if (i == 9) throw std::runtime_error("index 9");
    });
    FAIL() << "expected an exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "index 2");
  }
}

TEST(ThreadPool, ParallelForCompletesAllTasksDespiteException) {
  // The rethrow path must still wait for every index: tasks reference the
  // caller's `fn`, so abandoning them would leave a dangling reference.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&completed](std::size_t i) {
                                   if (i == 0) throw std::runtime_error("boom");
                                   completed.fetch_add(1);
                                 }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
  EXPECT_EQ(pool.size(), 2u);  // size() reports configured width even after shutdown
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.shutdown();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, ShutdownIsIdempotentAndPrecedesDestructor) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 7; });
  pool.shutdown();
  pool.shutdown();  // second call must be a harmless no-op
  EXPECT_EQ(future.get(), 7);
}

TEST(ThreadPool, ConcurrentShutdownCallsAreSafe) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 16; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    std::vector<std::thread> closers;
    for (int t = 0; t < 4; ++t) {
      closers.emplace_back([&pool] { pool.shutdown(); });
    }
    for (auto& closer : closers) closer.join();
    EXPECT_EQ(done.load(), 16);
  }
}

TEST(ThreadPool, ParallelForAfterShutdownThrowsWithoutRunningFn) {
  ThreadPool pool(2);
  pool.shutdown();
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.parallel_for(8, [&calls](std::size_t) { calls.fetch_add(1); }),
               std::runtime_error);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ResultsPreserveValues) {
  ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

}  // namespace
}  // namespace ecad::util
