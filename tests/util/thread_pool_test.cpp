#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace ecad::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ResultsPreserveValues) {
  ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

}  // namespace
}  // namespace ecad::util
