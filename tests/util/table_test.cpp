#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ecad::util {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable table({"Dataset", "Acc"});
  table.add_row({"credit-g", "0.788"});
  table.add_row({"har", "0.991"});
  const std::string out = table.render("TITLE");
  EXPECT_NE(out.find("TITLE"), std::string::npos);
  EXPECT_NE(out.find("Dataset"), std::string::npos);
  EXPECT_NE(out.find("credit-g"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, PadsColumnsToWidestCell) {
  TextTable table({"a", "b"});
  table.add_row({"longvalue", "x"});
  const std::string out = table.render("");
  // Header cell 'a' must be padded to the width of "longvalue".
  EXPECT_NE(out.find("a         |"), std::string::npos);
}

TEST(TextTable, RejectsRaggedRows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, EmptyTitleOmitsTitleLine) {
  TextTable table({"x"});
  table.add_row({"1"});
  const std::string out = table.render("");
  EXPECT_EQ(out.find('\n'), out.find("x\n") + 1);
}

TEST(TextTable, PrintStreamsRenderedText) {
  TextTable table({"x"});
  table.add_row({"42"});
  std::ostringstream out;
  table.print(out, "t");
  EXPECT_EQ(out.str(), table.render("t"));
}

TEST(TextTable, CountsRows) {
  TextTable table({"x"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace ecad::util
