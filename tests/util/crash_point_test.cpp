#include "util/crash_point.h"

#include <gtest/gtest.h>

#include <string>

namespace ecad::util {
namespace {

// The spec is process-global; every test disarms on the way out.
class CrashPointTest : public ::testing::Test {
 protected:
  void TearDown() override { set_crash_point_spec_for_testing(""); }
};

TEST_F(CrashPointTest, DisarmedIsANoOp) {
  set_crash_point_spec_for_testing("");
  crash_point("checkpoint");
  EXPECT_EQ(crash_point_hits_for_testing(), 0u);
}

TEST_F(CrashPointTest, OtherLabelsDoNotCount) {
  set_crash_point_spec_for_testing("checkpoint:3");
  crash_point("cache_file");
  crash_point("checkpoint_tmp");  // distinct label, not a prefix match
  EXPECT_EQ(crash_point_hits_for_testing(), 0u);
}

TEST_F(CrashPointTest, CountsHitsBelowThreshold) {
  set_crash_point_spec_for_testing("checkpoint:3");
  crash_point("checkpoint");
  crash_point("checkpoint");
  EXPECT_EQ(crash_point_hits_for_testing(), 2u);  // still alive: fires on the 3rd
}

TEST_F(CrashPointTest, MalformedSpecDisarms) {
  set_crash_point_spec_for_testing("checkpoint:not_a_number");
  crash_point("checkpoint");
  EXPECT_EQ(crash_point_hits_for_testing(), 0u);
  set_crash_point_spec_for_testing(":5");
  crash_point("checkpoint");
  EXPECT_EQ(crash_point_hits_for_testing(), 0u);
}

TEST_F(CrashPointTest, BareLabelFiresOnFirstHit) {
  set_crash_point_spec_for_testing("boom");
  EXPECT_EXIT(crash_point("boom"), ::testing::ExitedWithCode(kCrashPointExitCode),
              "injected crash at 'boom'");
}

TEST_F(CrashPointTest, FiresOnNthHit) {
  set_crash_point_spec_for_testing("boom:2");
  crash_point("boom");
  EXPECT_EXIT(crash_point("boom"), ::testing::ExitedWithCode(kCrashPointExitCode),
              "injected crash at 'boom'");
}

}  // namespace
}  // namespace ecad::util
