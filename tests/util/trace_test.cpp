#include "util/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace ecad::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// One fixture owns the trace lifecycle: the sink is process-global, so every
// test must close what it opens (and the suite must not run concurrently
// with another trace user — it doesn't; nothing else in the util tests
// enables tracing).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "trace_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".json";
  }
  void TearDown() override {
    trace_close();
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(TraceTest, DisabledByDefaultAndEventsAreNoOps) {
  ASSERT_FALSE(trace_enabled());
  trace_complete("cat", "name", 0, 10);  // must not crash with no sink
  trace_instant("cat", "name");
  { TraceSpan span("cat", "scoped"); }
}

TEST_F(TraceTest, MonotonicMicrosNeverGoesBackwards) {
  const std::uint64_t a = monotonic_micros();
  const std::uint64_t b = monotonic_micros();
  EXPECT_LE(a, b);
}

TEST_F(TraceTest, OpenEmitCloseProducesAnEventArray) {
  trace_open(path_);
  EXPECT_TRUE(trace_enabled());
  trace_complete("net", "shard", 10, 250);
  trace_instant("workerd", "batch 1 accepted");
  { TraceSpan span("evo", "generation 1"); }
  trace_close();
  EXPECT_FALSE(trace_enabled());

  const std::string content = slurp(path_);
  EXPECT_EQ(content.front(), '[');
  EXPECT_EQ(content.substr(content.size() - 2), "]\n");
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"shard\""), std::string::npos);
  EXPECT_NE(content.find("\"cat\":\"evo\""), std::string::npos);
  EXPECT_NE(content.find("\"dur\":240"), std::string::npos);
}

TEST_F(TraceTest, FileIsLoadableBeforeCloseCrashRobustness) {
  // A killed daemon never writes the closing bracket; the array format is
  // chosen so the file still holds complete event objects at any moment.
  trace_open(path_);
  trace_instant("net", "first");
  trace_instant("net", "second");
  const std::string content = slurp(path_);
  EXPECT_EQ(content.front(), '[');
  EXPECT_NE(content.find("\"name\":\"first\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"second\""), std::string::npos);
  // Events separated, each a complete JSON object on its own.
  EXPECT_NE(content.find("},\n{"), std::string::npos);
}

TEST_F(TraceTest, NamesAreJsonEscaped) {
  trace_open(path_);
  trace_instant("cat", "quote \" and backslash \\");
  const std::string content = slurp(path_);
  EXPECT_NE(content.find("quote \\\" and backslash \\\\"), std::string::npos);
}

TEST_F(TraceTest, ReopenWhileActiveIsIgnored) {
  trace_open(path_);
  const std::string other = path_ + ".other";
  trace_open(other);  // ignored: a file is already active
  trace_instant("cat", "event");
  trace_close();
  EXPECT_NE(slurp(path_).find("\"name\":\"event\""), std::string::npos);
  std::remove(other.c_str());
}

TEST_F(TraceTest, OpenOnUnwritablePathThrows) {
  EXPECT_THROW(trace_open("/nonexistent_dir_ecad/trace.json"), std::runtime_error);
  EXPECT_FALSE(trace_enabled());
}

TEST_F(TraceTest, SpanCapturesEnabledStateAtConstruction) {
  // A span built while tracing is off stays silent even if tracing turns on
  // before it dies — events never carry a bogus zero start timestamp.
  TraceSpan outside("cat", "armed-late");
  trace_open(path_);
  { TraceSpan inside("cat", "armed-early"); }
  trace_close();
  const std::string content = slurp(path_);
  EXPECT_NE(content.find("armed-early"), std::string::npos);
  EXPECT_EQ(content.find("armed-late"), std::string::npos);
}

}  // namespace
}  // namespace ecad::util
