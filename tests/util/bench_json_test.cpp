#include "util/bench_json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/table.h"

namespace ecad::util {
namespace {

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, NestedStructureAndCommas) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("name").value("x");
  json.key("list").begin_array().value(std::int64_t{1}).value(std::int64_t{2}).end_array();
  json.key("flag").value(true);
  json.end_object();
  EXPECT_EQ(out.str(),
            "{\n  \"name\": \"x\",\n  \"list\": [\n    1,\n    2\n  ],\n  \"flag\": true\n}");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.value(1.5);
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_NE(out.str().find("1.5"), std::string::npos);
  EXPECT_NE(out.str().find("null"), std::string::npos);
  EXPECT_EQ(out.str().find("inf"), std::string::npos);
  EXPECT_EQ(out.str().find("nan"), std::string::npos);
}

TEST(BenchReport, SerializesEntriesWithLabelsAndMetrics) {
  BenchReport report("unit");
  report.set_metadata("title", "t");
  report.add_entry("case/1").label("kernel", "packed").metric("gflops", 12.25);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"title\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"case/1\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel\": \"packed\""), std::string::npos);
  EXPECT_NE(json.find("\"gflops\": 12.25"), std::string::npos);
  EXPECT_EQ(report.num_entries(), 1u);
}

TEST(BenchReport, MetadataOverwritesByKey) {
  BenchReport report("unit");
  report.set_metadata("k", "v1");
  report.set_metadata("k", "v2");
  const std::string json = report.to_json();
  EXPECT_EQ(json.find("v1"), std::string::npos);
  EXPECT_NE(json.find("\"k\": \"v2\""), std::string::npos);
}

TEST(BenchReport, WriteFileHonorsOutputDirEnv) {
  ASSERT_EQ(setenv("ECAD_BENCH_JSON_DIR", "/tmp", 1), 0);
  BenchReport report("bench_json_unit_test");
  report.add_entry("e").metric("v", 1.0);
  const std::string path = report.write_file();
  unsetenv("ECAD_BENCH_JSON_DIR");
  EXPECT_EQ(path, "/tmp/BENCH_bench_json_unit_test.json");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"bench\": \"bench_json_unit_test\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TableToReport, RowsBecomeEntriesKeyedByHeader) {
  TextTable table({"Dataset", "Acc", "Time"});
  table.add_row({"credit-g", "0.76", "1.5"});
  table.add_row({"har", "0.98", "9.0"});
  const BenchReport report = table_to_report("t3", "runtime", table);
  EXPECT_EQ(report.num_entries(), 2u);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"name\": \"credit-g\""), std::string::npos);
  EXPECT_NE(json.find("\"Acc\": \"0.98\""), std::string::npos);
  EXPECT_NE(json.find("\"title\": \"runtime\""), std::string::npos);
}

}  // namespace
}  // namespace ecad::util
