#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace ecad::util {
namespace {

TEST(ParseCsv, SimpleWithHeader) {
  const CsvTable table = parse_csv("a,b\n1,2\n3,4\n", /*has_header=*/true);
  ASSERT_EQ(table.header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(table.rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(ParseCsv, NoHeader) {
  const CsvTable table = parse_csv("1,2\n", /*has_header=*/false);
  EXPECT_TRUE(table.header.empty());
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.num_cols(), 2u);
}

TEST(ParseCsv, QuotedFieldsWithCommasAndQuotes) {
  const CsvTable table = parse_csv("\"a,b\",\"say \"\"hi\"\"\"\nplain,2\n", false);
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.rows[0][0], "a,b");
  EXPECT_EQ(table.rows[0][1], "say \"hi\"");
}

TEST(ParseCsv, CrLfLineEndings) {
  const CsvTable table = parse_csv("x,y\r\n1,2\r\n", true);
  EXPECT_EQ(table.header[0], "x");
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.rows[0][1], "2");
}

TEST(ParseCsv, SkipsBlankLines) {
  const CsvTable table = parse_csv("a\n\n1\n\n2\n", true);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(ParseCsv, MissingTrailingNewline) {
  const CsvTable table = parse_csv("a,b\n1,2", true);
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.rows[0][1], "2");
}

TEST(ToCsv, RoundTripsQuoting) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows.push_back({"x,y", "said \"ok\""});
  table.rows.push_back({"plain", "line\nbreak"});
  const CsvTable reparsed = parse_csv(to_csv(table), true);
  EXPECT_EQ(reparsed.header, table.header);
  ASSERT_EQ(reparsed.num_rows(), 2u);
  EXPECT_EQ(reparsed.rows[0][0], "x,y");
  EXPECT_EQ(reparsed.rows[0][1], "said \"ok\"");
  EXPECT_EQ(reparsed.rows[1][1], "line\nbreak");
}

TEST(CsvFile, WriteAndReadBack) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ecad_csv_test.csv").string();
  CsvTable table;
  table.header = {"f0", "label"};
  table.rows.push_back({"0.5", "1"});
  write_csv_file(path, table);
  const CsvTable loaded = read_csv_file(path, true);
  EXPECT_EQ(loaded.header, table.header);
  EXPECT_EQ(loaded.rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/definitely/missing.csv", true), std::runtime_error);
}

}  // namespace
}  // namespace ecad::util
