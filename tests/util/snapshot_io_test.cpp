#include "util/snapshot_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace ecad::util {
namespace {

std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + "snapshot_io_" + stem + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed());
}

TEST(SnapshotIo, PrimitivesRoundTrip) {
  SnapshotWriter writer;
  writer.put_u8(0xab);
  writer.put_u16(0xbeef);
  writer.put_u32(0xdeadbeefu);
  writer.put_u64(0x0123456789abcdefull);
  writer.put_f64(-1.25e-3);
  writer.put_bool(true);
  writer.put_bool(false);
  writer.put_string("snapshot");
  writer.put_size_vector({1, 2, 300});

  SnapshotReader reader(writer.bytes());
  EXPECT_EQ(reader.get_u8(), 0xab);
  EXPECT_EQ(reader.get_u16(), 0xbeef);
  EXPECT_EQ(reader.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.get_u64(), 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(reader.get_f64(), -1.25e-3);
  EXPECT_TRUE(reader.get_bool());
  EXPECT_FALSE(reader.get_bool());
  EXPECT_EQ(reader.get_string(), "snapshot");
  EXPECT_EQ(reader.get_size_vector(), (std::vector<std::size_t>{1, 2, 300}));
  EXPECT_NO_THROW(reader.expect_end());
}

TEST(SnapshotIo, LittleEndianLayoutIsPinned) {
  // The byte layout must match net/wire.h exactly — a drift here silently
  // invalidates every deployed checkpoint.
  SnapshotWriter writer;
  writer.put_u32(0x04030201u);
  const std::vector<std::uint8_t> expected = {0x01, 0x02, 0x03, 0x04};
  EXPECT_EQ(writer.bytes(), expected);
}

TEST(SnapshotIo, TruncatedReadThrows) {
  SnapshotWriter writer;
  writer.put_u64(7);
  std::vector<std::uint8_t> bytes = writer.take();
  bytes.pop_back();
  SnapshotReader reader(bytes);
  EXPECT_THROW(reader.get_u64(), SnapshotError);
}

TEST(SnapshotIo, TruncatedStringThrows) {
  SnapshotWriter writer;
  writer.put_string("hello");
  std::vector<std::uint8_t> bytes = writer.take();
  bytes.resize(bytes.size() - 2);
  SnapshotReader reader(bytes);
  EXPECT_THROW(reader.get_string(), SnapshotError);
}

TEST(SnapshotIo, OverCapStringLengthThrows) {
  SnapshotWriter writer;
  writer.put_u32(static_cast<std::uint32_t>(kMaxSnapshotStringBytes + 1));
  SnapshotReader reader(writer.bytes());
  EXPECT_THROW(reader.get_string(), SnapshotError);
}

TEST(SnapshotIo, OverCapVectorCountThrows) {
  SnapshotWriter writer;
  writer.put_u32(static_cast<std::uint32_t>(kMaxSnapshotVectorElems + 1));
  SnapshotReader reader(writer.bytes());
  EXPECT_THROW(reader.get_size_vector(), SnapshotError);
}

TEST(SnapshotIo, ExpectEndRejectsTrailingGarbage) {
  SnapshotWriter writer;
  writer.put_u8(1);
  writer.put_u8(2);
  SnapshotReader reader(writer.bytes());
  reader.get_u8();
  EXPECT_THROW(reader.expect_end(), SnapshotError);
}

TEST(SnapshotIo, AtomicWriteThenReadRoundTrips) {
  const std::string path = temp_path("roundtrip");
  const std::vector<std::uint8_t> bytes = {0x00, 0x01, 0xfe, 0xff};
  write_file_atomic(path, bytes);
  EXPECT_EQ(read_file_bytes(path), bytes);
  // No tmp residue: the rename consumed it.
  EXPECT_THROW(read_file_bytes(path + ".tmp"), SnapshotError);
  std::remove(path.c_str());
}

TEST(SnapshotIo, AtomicWriteReplacesExistingFile) {
  const std::string path = temp_path("replace");
  write_file_atomic(path, {1, 2, 3});
  write_file_atomic(path, {9});
  EXPECT_EQ(read_file_bytes(path), (std::vector<std::uint8_t>{9}));
  std::remove(path.c_str());
}

TEST(SnapshotIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_file_bytes(temp_path("does_not_exist")), SnapshotError);
}

TEST(SnapshotIo, WriteToMissingDirectoryThrows) {
  EXPECT_THROW(write_file_atomic(temp_path("no_such_dir") + "/x.bin", {1}), SnapshotError);
}

}  // namespace
}  // namespace ecad::util
