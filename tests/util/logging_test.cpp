#include "util/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

namespace ecad::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Info); }
};

TEST_F(LoggingTest, LevelRoundTripsThroughNames) {
  for (LogLevel level : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                         LogLevel::Error, LogLevel::Off}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
}

TEST_F(LoggingTest, ParseIsCaseInsensitiveAndAcceptsAliases) {
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  EXPECT_THROW(parse_log_level("loud"), std::invalid_argument);
}

TEST_F(LoggingTest, SetAndGetLevel) {
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST_F(LoggingTest, LevelOrderingSupportsFiltering) {
  EXPECT_LT(LogLevel::Trace, LogLevel::Debug);
  EXPECT_LT(LogLevel::Debug, LogLevel::Info);
  EXPECT_LT(LogLevel::Info, LogLevel::Warn);
  EXPECT_LT(LogLevel::Warn, LogLevel::Error);
  EXPECT_LT(LogLevel::Error, LogLevel::Off);
}

TEST_F(LoggingTest, StreamBuilderDoesNotCrashAtAnyLevel) {
  set_log_level(LogLevel::Off);
  Log(LogLevel::Info, "test") << "value " << 42 << ' ' << 1.5;
  set_log_level(LogLevel::Trace);
  Log(LogLevel::Trace, "test") << "trace line";
}

TEST_F(LoggingTest, EnvOverrideAppliesOnRefresh) {
  ASSERT_EQ(setenv("ECAD_LOG_LEVEL", "error", /*overwrite=*/1), 0);
  refresh_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Error);

  // Unparsable values keep the current level instead of throwing.
  ASSERT_EQ(setenv("ECAD_LOG_LEVEL", "shouting", 1), 0);
  refresh_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Error);

  ASSERT_EQ(unsetenv("ECAD_LOG_LEVEL"), 0);
  refresh_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Error);  // unset = leave as-is
}

TEST_F(LoggingTest, IdentityRoundTripsAndPrefixesSafely) {
  set_log_identity("workerd:7001");
  EXPECT_EQ(log_identity(), "workerd:7001");
  Log(LogLevel::Trace, "test") << "line with identity";  // below Info: dropped
  set_log_identity("");
  EXPECT_EQ(log_identity(), "");
}

TEST_F(LoggingTest, ConcurrentWritersDoNotRace) {
  // Logs at an emitting level on purpose: the locked format-and-write path
  // must run concurrently with identity mutation for TSan to see it (a
  // filtered-out level would return before the sink mutex).
  set_log_level(LogLevel::Error);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 10; ++i) {
        set_log_identity(t % 2 == 0 ? "a" : "b");
        Log(LogLevel::Error, "race") << "t" << t << " i" << i;
        (void)log_identity();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  set_log_identity("");
}

}  // namespace
}  // namespace ecad::util
