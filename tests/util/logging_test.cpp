#include "util/logging.h"

#include <gtest/gtest.h>

namespace ecad::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Info); }
};

TEST_F(LoggingTest, LevelRoundTripsThroughNames) {
  for (LogLevel level : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                         LogLevel::Error, LogLevel::Off}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
}

TEST_F(LoggingTest, ParseIsCaseInsensitiveAndAcceptsAliases) {
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  EXPECT_THROW(parse_log_level("loud"), std::invalid_argument);
}

TEST_F(LoggingTest, SetAndGetLevel) {
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST_F(LoggingTest, LevelOrderingSupportsFiltering) {
  EXPECT_LT(LogLevel::Trace, LogLevel::Debug);
  EXPECT_LT(LogLevel::Debug, LogLevel::Info);
  EXPECT_LT(LogLevel::Info, LogLevel::Warn);
  EXPECT_LT(LogLevel::Warn, LogLevel::Error);
  EXPECT_LT(LogLevel::Error, LogLevel::Off);
}

TEST_F(LoggingTest, StreamBuilderDoesNotCrashAtAnyLevel) {
  set_log_level(LogLevel::Off);
  Log(LogLevel::Info, "test") << "value " << 42 << ' ' << 1.5;
  set_log_level(LogLevel::Trace);
  Log(LogLevel::Trace, "test") << "trace line";
}

}  // namespace
}  // namespace ecad::util
