#include "util/logging.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace ecad::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Info); }
};

TEST_F(LoggingTest, LevelRoundTripsThroughNames) {
  for (LogLevel level : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                         LogLevel::Error, LogLevel::Off}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
}

TEST_F(LoggingTest, ParseIsCaseInsensitiveAndAcceptsAliases) {
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  EXPECT_THROW(parse_log_level("loud"), std::invalid_argument);
}

TEST_F(LoggingTest, SetAndGetLevel) {
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST_F(LoggingTest, LevelOrderingSupportsFiltering) {
  EXPECT_LT(LogLevel::Trace, LogLevel::Debug);
  EXPECT_LT(LogLevel::Debug, LogLevel::Info);
  EXPECT_LT(LogLevel::Info, LogLevel::Warn);
  EXPECT_LT(LogLevel::Warn, LogLevel::Error);
  EXPECT_LT(LogLevel::Error, LogLevel::Off);
}

TEST_F(LoggingTest, StreamBuilderDoesNotCrashAtAnyLevel) {
  set_log_level(LogLevel::Off);
  Log(LogLevel::Info, "test") << "value " << 42 << ' ' << 1.5;
  set_log_level(LogLevel::Trace);
  Log(LogLevel::Trace, "test") << "trace line";
}

TEST_F(LoggingTest, EnvOverrideAppliesOnRefresh) {
  ASSERT_EQ(setenv("ECAD_LOG_LEVEL", "error", /*overwrite=*/1), 0);
  refresh_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Error);

  // Unparsable values keep the current level instead of throwing.
  ASSERT_EQ(setenv("ECAD_LOG_LEVEL", "shouting", 1), 0);
  refresh_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Error);

  ASSERT_EQ(unsetenv("ECAD_LOG_LEVEL"), 0);
  refresh_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Error);  // unset = leave as-is
}

TEST_F(LoggingTest, IdentityRoundTripsAndPrefixesSafely) {
  set_log_identity("workerd:7001");
  EXPECT_EQ(log_identity(), "workerd:7001");
  Log(LogLevel::Trace, "test") << "line with identity";  // below Info: dropped
  set_log_identity("");
  EXPECT_EQ(log_identity(), "");
}

TEST_F(LoggingTest, LinePrefixCarriesMonotonicTimestampAndLevel) {
  set_log_level(LogLevel::Error);
  set_log_identity("");
  ::testing::internal::CaptureStderr();
  log_line(LogLevel::Error, "stamp", "hello");
  const std::string line = ::testing::internal::GetCapturedStderr();

  // "[<sec>.<6-digit-micros>] [ERROR] [stamp] hello\n" — seconds.micros from
  // the monotonic epoch shared with util/trace.h.
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.front(), '[');
  const std::size_t dot = line.find('.');
  ASSERT_NE(dot, std::string::npos);
  for (std::size_t i = 1; i < dot; ++i) {
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line[i]))) << line;
  }
  ASSERT_GE(line.size(), dot + 8);
  for (std::size_t i = dot + 1; i < dot + 7; ++i) {
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line[i]))) << line;
  }
  EXPECT_EQ(line[dot + 7], ']') << "micros field must be exactly 6 digits: " << line;
  EXPECT_NE(line.find("] [ERROR] [stamp] hello\n"), std::string::npos) << line;
}

TEST_F(LoggingTest, TimestampsAreMonotoneAcrossLines) {
  set_log_level(LogLevel::Error);
  set_log_identity("");
  const auto stamp_of = [](const std::string& line) {
    // Parse "[sec.micros]" back into microseconds.
    const std::size_t dot = line.find('.');
    const std::uint64_t sec = std::stoull(line.substr(1, dot - 1));
    const std::uint64_t micros = std::stoull(line.substr(dot + 1, 6));
    return sec * 1000000 + micros;
  };
  ::testing::internal::CaptureStderr();
  log_line(LogLevel::Error, "mono", "first");
  log_line(LogLevel::Error, "mono", "second");
  const std::string out = ::testing::internal::GetCapturedStderr();
  const std::size_t second_line = out.find("\n[") + 1;
  ASSERT_NE(second_line, std::string::npos);
  EXPECT_LE(stamp_of(out), stamp_of(out.substr(second_line)));
}

TEST_F(LoggingTest, ConcurrentWritersDoNotRace) {
  // Logs at an emitting level on purpose: the locked format-and-write path
  // must run concurrently with identity mutation for TSan to see it (a
  // filtered-out level would return before the sink mutex).
  set_log_level(LogLevel::Error);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 10; ++i) {
        set_log_identity(t % 2 == 0 ? "a" : "b");
        Log(LogLevel::Error, "race") << "t" << t << " i" << i;
        (void)log_identity();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  set_log_identity("");
}

}  // namespace
}  // namespace ecad::util
