#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace ecad::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(Rng, NextIndexStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_index(10), 10u);
  }
  EXPECT_EQ(rng.next_index(1), 0u);
}

TEST(Rng, NextIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.next_double(-3.0, 4.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 4.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(13);
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.25)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (parent() != child()) ++differing;
  }
  EXPECT_GT(differing, 8);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleHandlesDegenerateSizes) {
  Rng rng(1);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace ecad::util
