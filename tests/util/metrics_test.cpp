#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace ecad::util {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  EXPECT_EQ(gauge.value(), 3.5);
  gauge.add(-1.5);
  EXPECT_EQ(gauge.value(), 2.0);
}

// --- Histogram bucket boundaries -------------------------------------------

TEST(Histogram, UpperBoundsAreExactPowersOfTwoMicroseconds) {
  EXPECT_EQ(Histogram::upper_bound(0), 1e-6);
  EXPECT_EQ(Histogram::upper_bound(1), 2e-6);
  EXPECT_EQ(Histogram::upper_bound(10), 1e-6 * 1024.0);
  // The last finite bound covers ~275 s; the final bucket is the overflow.
  EXPECT_GT(Histogram::upper_bound(Histogram::kBuckets - 2), 200.0);
  EXPECT_TRUE(std::isinf(Histogram::upper_bound(Histogram::kBuckets - 1)));
}

TEST(Histogram, BucketBoundariesAreExact) {
  // Bucket i holds upper_bound(i-1) < v <= upper_bound(i): a value exactly
  // on a bound lands in that bucket, one ulp above lands in the next.
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    const double bound = Histogram::upper_bound(i);
    EXPECT_EQ(Histogram::bucket_index(bound), i) << "at bound " << bound;
    EXPECT_EQ(Histogram::bucket_index(std::nextafter(bound, inf)), i + 1)
        << "just above bound " << bound;
  }
}

TEST(Histogram, SubMicrosecondAndOverflowValues) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e-9), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e9), Histogram::kBuckets - 1);
}

TEST(Histogram, ObserveFillsCountSumAndBuckets) {
  Histogram histogram;
  histogram.observe(3e-6);   // bucket 2 (2e-6 < v <= 4e-6)
  histogram.observe(4e-6);   // bucket 2 (exact bound)
  histogram.observe(0.5);    // bucket 19 (0.26..0.52 s)
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 3e-6 + 4e-6 + 0.5);
  EXPECT_EQ(histogram.bucket(2), 2u);
  EXPECT_EQ(histogram.bucket(Histogram::bucket_index(0.5)), 1u);
}

// --- Quantiles --------------------------------------------------------------

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileWithinFactorTwoOfTrueValue) {
  // Log-bucket quantiles are exact to within one bucket, i.e. the estimate
  // of a point mass at v lies in (v/2, 2v] — the documented error bound.
  for (double v : {2e-6, 1e-4, 3.7e-3, 0.25, 8.0}) {
    Histogram histogram;
    for (int i = 0; i < 100; ++i) histogram.observe(v);
    for (double q : {0.01, 0.5, 0.9, 0.99, 1.0}) {
      const double estimate = histogram.quantile(q);
      EXPECT_GT(estimate, v / 2.0) << "v=" << v << " q=" << q;
      EXPECT_LE(estimate, 2.0 * v) << "v=" << v << " q=" << q;
    }
  }
}

TEST(Histogram, QuantileRanksSplitAcrossBuckets) {
  Histogram histogram;
  for (int i = 0; i < 90; ++i) histogram.observe(1.5e-6);  // bucket 1
  for (int i = 0; i < 10; ++i) histogram.observe(0.1);     // bucket ~17
  // p50 names rank 50 of 100 — deep inside the fast bucket.
  EXPECT_LE(histogram.quantile(0.50), 2e-6);
  // p99 names rank 99 — inside the slow bucket, so well above the fast one.
  EXPECT_GT(histogram.quantile(0.99), 0.05);
}

TEST(Histogram, OverflowBucketQuantileReportsLastFiniteBound) {
  Histogram histogram;
  histogram.observe(1e9);
  EXPECT_EQ(histogram.quantile(0.5), Histogram::upper_bound(Histogram::kBuckets - 2));
}

TEST(QuantileFromBuckets, MatchesHistogramQuantile) {
  Histogram histogram;
  for (double v : {1e-5, 2e-4, 3e-3, 4e-2, 0.5}) histogram.observe(v);
  const std::vector<std::uint64_t> buckets = histogram.bucket_counts();
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(quantile_from_buckets(buckets, q), histogram.quantile(q));
  }
}

// --- Registry ----------------------------------------------------------------

TEST(MetricsRegistry, LookupsAreStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.counter");
  Counter& b = registry.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndPrefixFiltered) {
  MetricsRegistry registry;
  registry.counter("b.second").add(2);
  registry.counter("a.first").add(1);
  registry.gauge("b.gauge").set(4.0);
  registry.histogram("b.hist").observe(1e-3);

  const std::vector<MetricSnapshot> all = registry.snapshot();
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].name, all[i].name);
  }

  const std::vector<MetricSnapshot> filtered = registry.snapshot("b.");
  ASSERT_EQ(filtered.size(), 3u);
  EXPECT_EQ(filtered[0].name, "b.gauge");
  EXPECT_EQ(filtered[0].kind, MetricKind::Gauge);
  EXPECT_EQ(filtered[0].value, 4.0);
  EXPECT_EQ(filtered[1].name, "b.hist");
  EXPECT_EQ(filtered[1].kind, MetricKind::Histogram);
  EXPECT_EQ(filtered[1].count, 1u);
  ASSERT_EQ(filtered[1].buckets.size(), Histogram::kBuckets);
  EXPECT_EQ(filtered[2].name, "b.second");
  EXPECT_EQ(filtered[2].kind, MetricKind::Counter);
  EXPECT_EQ(filtered[2].value, 2.0);
}

TEST(MetricsRegistry, BenchReportCarriesMetricsSnapshotFlavor) {
  MetricsRegistry registry;
  registry.counter("report.counter").add(3);
  registry.histogram("report.hist").observe(2e-3);
  const std::string json = registry.to_bench_report("metrics_test").to_json();
  EXPECT_NE(json.find("\"flavor\": \"metrics-snapshot\""), std::string::npos);
  EXPECT_NE(json.find("report.counter"), std::string::npos);
  EXPECT_NE(json.find("p99_s"), std::string::npos);
}

TEST(LabeledMetric, FormatsBaseKeyValue) {
  EXPECT_EQ(labeled_metric("net.items_dispatched_total", "endpoint", "127.0.0.1:7001"),
            "net.items_dispatched_total{endpoint=127.0.0.1:7001}");
}

TEST(Metrics, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&metrics(), &metrics());
}

// --- Concurrency (the TSan shard runs this under the race detector) ---------

TEST(Metrics, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& counter = registry.counter("stress.counter");
      Gauge& gauge = registry.gauge("stress.gauge");
      Histogram& histogram = registry.histogram("stress.hist");
      for (int i = 0; i < kIters; ++i) {
        counter.add(1);
        gauge.add(1.0);
        histogram.observe(1e-4);
        if (i % 1024 == 0) {
          // Snapshots race benignly with the writers; they must never tear.
          (void)registry.snapshot("stress.");
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const std::uint64_t expected = static_cast<std::uint64_t>(kThreads) * kIters;
  EXPECT_EQ(registry.counter("stress.counter").value(), expected);
  EXPECT_EQ(registry.gauge("stress.gauge").value(), static_cast<double>(expected));
  EXPECT_EQ(registry.histogram("stress.hist").count(), expected);
  EXPECT_NEAR(registry.histogram("stress.hist").sum(), 1e-4 * static_cast<double>(expected),
              1e-7);
}

}  // namespace
}  // namespace ecad::util
