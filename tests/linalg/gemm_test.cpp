#include "linalg/gemm.h"

#include <gtest/gtest.h>

#include <tuple>

namespace ecad::linalg {
namespace {

Matrix random(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  return Matrix::random_uniform(rows, cols, rng);
}

TEST(GemmNaive, KnownProduct) {
  const Matrix a{{1.0f, 2.0f}, {3.0f, 4.0f}};
  const Matrix b{{5.0f, 6.0f}, {7.0f, 8.0f}};
  Matrix c(2, 2);
  gemm_naive(a, b, c);
  EXPECT_TRUE(c.approx_equal(Matrix{{19.0f, 22.0f}, {43.0f, 50.0f}}));
}

TEST(GemmNaive, IdentityIsNeutral) {
  const Matrix a = random(6, 6, 1);
  Matrix c(6, 6);
  gemm_naive(a, Matrix::identity(6), c);
  EXPECT_TRUE(c.approx_equal(a));
}

TEST(GemmNaive, AccumulateAddsIntoC) {
  const Matrix a{{1.0f}}, b{{2.0f}};
  Matrix c(1, 1, 10.0f);
  gemm_naive(a, b, c, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c(0, 0), 12.0f);
  gemm_naive(a, b, c, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(c(0, 0), 2.0f);
}

TEST(Gemm, ShapeMismatchThrows) {
  const Matrix a(2, 3), b(4, 2);
  Matrix c(2, 2);
  EXPECT_THROW(gemm_naive(a, b, c), std::invalid_argument);
  Matrix bad_out(3, 3);
  const Matrix good_b(3, 2);
  EXPECT_THROW(gemm_blocked(a, good_b, bad_out), std::invalid_argument);
}

// Property sweep: blocked and parallel kernels must agree with the naive
// oracle across a range of (m, k, n) shapes including non-multiples of the
// block size.
class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmShapeTest, BlockedMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random(m, k, m * 31 + k);
  const Matrix b = random(k, n, n * 17 + 3);
  Matrix expected(m, n), actual(m, n);
  gemm_naive(a, b, expected);
  gemm_blocked(a, b, actual);
  EXPECT_TRUE(actual.approx_equal(expected, 1e-3f)) << "m=" << m << " k=" << k << " n=" << n;
}

TEST_P(GemmShapeTest, BlockedSmallBlockMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random(m, k, 11);
  const Matrix b = random(k, n, 13);
  Matrix expected(m, n), actual(m, n);
  gemm_naive(a, b, expected);
  gemm_blocked(a, b, actual, false, /*block=*/5);
  EXPECT_TRUE(actual.approx_equal(expected, 1e-3f));
}

TEST_P(GemmShapeTest, ParallelMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random(m, k, 7);
  const Matrix b = random(k, n, 9);
  Matrix expected(m, n), actual(m, n);
  gemm_naive(a, b, expected);
  util::ThreadPool pool(3);
  gemm_parallel(a, b, actual, pool);
  EXPECT_TRUE(actual.approx_equal(expected, 1e-3f));
}

TEST_P(GemmShapeTest, TransposedVariantsMatchExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  // gemm_at: C = Aᵀ B with A (m x k) treated as (k x m)ᵀ — inner dim is m.
  const Matrix a = random(m, k, 21);
  const Matrix b = random(m, n, 23);
  Matrix expected(k, n), actual(k, n);
  gemm_naive(a.transposed(), b, expected);
  gemm_at(a, b, actual);
  EXPECT_TRUE(actual.approx_equal(expected, 1e-3f));

  // gemm_bt: C = A Bᵀ with A (m x k), B (n x k).
  const Matrix a2 = random(m, k, 25);
  const Matrix b2 = random(n, k, 27);
  Matrix expected2(m, n), actual2(m, n);
  gemm_naive(a2, b2.transposed(), expected2);
  gemm_bt(a2, b2, actual2);
  EXPECT_TRUE(actual2.approx_equal(expected2, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(8, 8, 8), std::make_tuple(17, 13, 19),
                      std::make_tuple(64, 64, 64), std::make_tuple(65, 63, 70),
                      std::make_tuple(1, 100, 1), std::make_tuple(100, 1, 100),
                      std::make_tuple(32, 784, 10)));

TEST(Affine, AddsBroadcastBias) {
  const Matrix x{{1.0f, 0.0f}, {0.0f, 1.0f}};
  const Matrix w{{2.0f, 3.0f}, {4.0f, 5.0f}};
  const Matrix bias{{10.0f, 20.0f}};
  Matrix y;
  affine(x, w, bias, y);
  EXPECT_TRUE(y.approx_equal(Matrix{{12.0f, 23.0f}, {14.0f, 25.0f}}));
}

TEST(Affine, EmptyBiasSkipsAddition) {
  const Matrix x{{1.0f}}, w{{3.0f}};
  Matrix y;
  affine(x, w, Matrix(), y);
  EXPECT_FLOAT_EQ(y(0, 0), 3.0f);
}

TEST(Affine, WrongBiasShapeThrows) {
  const Matrix x(2, 2), w(2, 2);
  Matrix y;
  EXPECT_THROW(affine(x, w, Matrix(2, 2), y), std::invalid_argument);
  EXPECT_THROW(affine(x, w, Matrix(1, 3), y), std::invalid_argument);
}

TEST(Affine, EmptyBiasOverwritesPreSizedOutput) {
  // y already has the right shape and stale contents; affine must overwrite,
  // not accumulate, with or without a bias.
  const Matrix x{{1.0f, 0.0f}, {0.0f, 1.0f}};
  const Matrix w{{2.0f, 3.0f}, {4.0f, 5.0f}};
  Matrix y(2, 2, /*fill=*/100.0f);
  affine(x, w, Matrix(), y);
  EXPECT_TRUE(y.approx_equal(w));
  y.fill(100.0f);
  affine(x, w, Matrix{{1.0f, 1.0f}}, y);
  EXPECT_TRUE(y.approx_equal(Matrix{{3.0f, 4.0f}, {5.0f, 6.0f}}));
}

TEST(Affine, ZeroRowEmptyMatrixCountsAsEmptyBias) {
  // A default Matrix and a 0xN matrix are both empty(); neither may throw.
  const Matrix x{{2.0f}}, w{{5.0f}};
  Matrix y;
  affine(x, w, Matrix(0, 1), y);
  EXPECT_FLOAT_EQ(y(0, 0), 10.0f);
}

TEST(AddBiasRows, ValidatesShapeAndBroadcasts) {
  Matrix y{{1.0f, 2.0f}, {3.0f, 4.0f}};
  add_bias_rows(y, Matrix{{10.0f, 20.0f}});
  EXPECT_TRUE(y.approx_equal(Matrix{{11.0f, 22.0f}, {13.0f, 24.0f}}));
  add_bias_rows(y, Matrix());  // empty bias: no-op
  EXPECT_TRUE(y.approx_equal(Matrix{{11.0f, 22.0f}, {13.0f, 24.0f}}));
  EXPECT_THROW(add_bias_rows(y, Matrix(2, 2)), std::invalid_argument);
  EXPECT_THROW(add_bias_rows(y, Matrix(1, 3)), std::invalid_argument);
}

TEST(Matmul, AllocatesOutput) {
  const Matrix a = random(4, 6, 2);
  const Matrix b = random(6, 3, 4);
  const Matrix c = matmul(a, b);
  Matrix expected(4, 3);
  gemm_naive(a, b, expected);
  EXPECT_TRUE(c.approx_equal(expected, 1e-4f));
}

TEST(GemmFlops, Formula) {
  EXPECT_EQ(gemm_flops(2, 3, 4), 48u);
  EXPECT_EQ(gemm_flops(0, 3, 4), 0u);
}

}  // namespace
}  // namespace ecad::linalg
