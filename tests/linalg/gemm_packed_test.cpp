// Property tests for the packed register-blocked GEMM backend: the packed
// driver (all four operand orientations), the prepacked-B path, the parallel
// driver across 1–8 threads, and kernel selection — all validated against
// the gemm_naive oracle over odd/ragged shapes.
#include "linalg/gemm_packed.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "linalg/gemm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ecad::linalg {
namespace {

Matrix random(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  return Matrix::random_uniform(rows, cols, rng);
}

/// Forces a kernel for the test's scope and restores the previous selection.
class KernelGuard {
 public:
  explicit KernelGuard(GemmKernel kernel) : previous_(active_gemm_kernel()) {
    set_gemm_kernel(kernel);
  }
  ~KernelGuard() { set_gemm_kernel(previous_); }

 private:
  GemmKernel previous_;
};

// Shapes chosen to stress every edge of the tiling: unit dims, primes below
// and above the register tile (MR=NR=8), exact multiples, and K spanning
// more than one KC=256 panel.
const std::vector<std::array<std::size_t, 3>>& ragged_shapes() {
  static const std::vector<std::array<std::size_t, 3>> shapes = {
      {1, 1, 1},   {1, 7, 1},    {5, 1, 3},    {7, 11, 13},  {8, 8, 8},
      {9, 17, 23}, {16, 31, 8},  {29, 37, 41}, {64, 64, 64}, {33, 129, 65},
      {1, 300, 1}, {100, 1, 97}, {3, 521, 5},  {40, 277, 31}};
  return shapes;
}

TEST(GemmPacked, RandomizedShapesMatchNaiveOracle) {
  KernelGuard guard(GemmKernel::Packed);
  util::Rng rng(12345);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m = static_cast<std::size_t>(rng.next_int(1, 90));
    const std::size_t k = static_cast<std::size_t>(rng.next_int(1, 300));
    const std::size_t n = static_cast<std::size_t>(rng.next_int(1, 90));
    const Matrix a = random(m, k, trial * 3 + 1);
    const Matrix b = random(k, n, trial * 3 + 2);
    Matrix expected(m, n), actual(m, n);
    gemm_naive(a, b, expected);
    gemm_blocked(a, b, actual);
    EXPECT_TRUE(actual.approx_equal(expected, 1e-3f))
        << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(GemmPacked, RaggedShapesWithAndWithoutAccumulate) {
  KernelGuard guard(GemmKernel::Packed);
  for (const auto& [m, k, n] : ragged_shapes()) {
    const Matrix a = random(m, k, m * 131 + k);
    const Matrix b = random(k, n, n * 151 + 7);
    const Matrix seed = random(m, n, 999);
    for (const bool accumulate : {false, true}) {
      Matrix expected = seed, actual = seed;
      gemm_naive(a, b, expected, accumulate);
      gemm_blocked(a, b, actual, accumulate);
      EXPECT_TRUE(actual.approx_equal(expected, 1e-3f))
          << "m=" << m << " k=" << k << " n=" << n << " accumulate=" << accumulate;
    }
  }
}

TEST(GemmPacked, TransposedProductsMatchNaiveOracle) {
  KernelGuard guard(GemmKernel::Packed);
  for (const auto& [m, k, n] : ragged_shapes()) {
    // gemm_at: C (k×n) = aᵀ·b with a (m×k), b (m×n).
    const Matrix a = random(m, k, 41);
    const Matrix b = random(m, n, 43);
    for (const bool accumulate : {false, true}) {
      Matrix expected = random(k, n, 7), actual = expected;
      gemm_naive(a.transposed(), b, expected, accumulate);
      gemm_at(a, b, actual, accumulate);
      EXPECT_TRUE(actual.approx_equal(expected, 1e-3f))
          << "at m=" << m << " k=" << k << " n=" << n;
    }
    // gemm_bt: C (m×n) = a·bᵀ with a (m×k), b (n×k).
    const Matrix a2 = random(m, k, 47);
    const Matrix b2 = random(n, k, 53);
    for (const bool accumulate : {false, true}) {
      Matrix expected = random(m, n, 11), actual = expected;
      gemm_naive(a2, b2.transposed(), expected, accumulate);
      gemm_bt(a2, b2, actual, accumulate);
      EXPECT_TRUE(actual.approx_equal(expected, 1e-3f))
          << "bt m=" << m << " k=" << k << " n=" << n;
    }
  }
}

TEST(GemmPacked, ParallelMatchesNaiveAcrossThreadCounts) {
  KernelGuard guard(GemmKernel::Packed);
  const std::size_t m = 83, k = 67, n = 59;
  const Matrix a = random(m, k, 61);
  const Matrix b = random(k, n, 67);
  Matrix expected(m, n);
  gemm_naive(a, b, expected);
  for (std::size_t threads = 1; threads <= 8; ++threads) {
    util::ThreadPool pool(threads);
    Matrix actual(m, n);
    gemm_parallel(a, b, actual, pool);
    EXPECT_TRUE(actual.approx_equal(expected, 1e-3f)) << "threads=" << threads;
    // Accumulate path too: result should be exactly one extra product added.
    gemm_parallel(a, b, actual, pool, /*accumulate=*/true);
    Matrix doubled(m, n);
    gemm_naive(a, b, doubled);
    gemm_naive(a, b, doubled, /*accumulate=*/true);
    EXPECT_TRUE(actual.approx_equal(doubled, 1e-3f)) << "threads=" << threads;
  }
}

TEST(GemmPacked, PrepackedMatchesAndSurvivesRepack) {
  const Matrix a = random(17, 201, 71);
  const Matrix b = random(201, 19, 73);
  Matrix expected(17, 19), actual(17, 19);
  gemm_naive(a, b, expected);
  PackedB packed;
  packed.pack(b);
  EXPECT_EQ(packed.rows(), 201u);
  EXPECT_EQ(packed.cols(), 19u);
  gemm_prepacked(a, packed, actual);
  EXPECT_TRUE(actual.approx_equal(expected, 1e-3f));

  // Repacking a different operand reuses the object.
  const Matrix b2 = random(64, 40, 79);
  const Matrix a2 = random(8, 64, 83);
  packed.pack(b2);
  Matrix expected2(8, 40), actual2(8, 40);
  gemm_naive(a2, b2, expected2);
  gemm_prepacked(a2, packed, actual2);
  EXPECT_TRUE(actual2.approx_equal(expected2, 1e-3f));
}

TEST(GemmPacked, PrepackedTransposeMatchesExplicitTranspose) {
  const Matrix w = random(48, 31, 89);  // logical B = wᵀ (31×48)
  const Matrix a = random(9, 31, 97);
  PackedB packed;
  packed.pack(w, /*transpose=*/true);
  EXPECT_EQ(packed.rows(), 31u);
  EXPECT_EQ(packed.cols(), 48u);
  Matrix expected(9, 48), actual(9, 48);
  gemm_naive(a, w.transposed(), expected);
  gemm_prepacked(a, packed, actual);
  EXPECT_TRUE(actual.approx_equal(expected, 1e-3f));
}

TEST(GemmPacked, PrepackedShapeMismatchThrows) {
  PackedB packed;
  packed.pack(random(4, 4, 1));
  Matrix c(3, 4);
  EXPECT_THROW(gemm_prepacked(random(3, 5, 2), packed, c), std::invalid_argument);
  Matrix bad(3, 5);
  EXPECT_THROW(gemm_prepacked(random(3, 4, 2), packed, bad), std::invalid_argument);
}

TEST(GemmPacked, ParallelPackingIsBitIdenticalToSerial) {
  // The parallel driver's B panels are packed across the pool; the layout
  // must be byte-identical to the serial packer for every ragged shape and
  // thread count (disjoint-region writes, no seams at chunk boundaries).
  for (const auto& [m, k, n] : ragged_shapes()) {
    (void)m;
    const Matrix b = random(k, n, k * 977 + n);
    PackedB serial;
    serial.pack(b);
    for (const std::size_t threads : {1u, 2u, 5u, 8u}) {
      util::ThreadPool pool(threads);
      PackedB parallel;
      parallel.pack_view_parallel(detail::MatView::normal(b), pool);
      ASSERT_EQ(parallel.rows(), serial.rows());
      ASSERT_EQ(parallel.cols(), serial.cols());
      const std::size_t padded_n = (n + detail::kNR - 1) / detail::kNR * detail::kNR;
      EXPECT_EQ(std::memcmp(parallel.panel(0), serial.panel(0),
                            k * padded_n * sizeof(float)),
                0)
          << "k=" << k << " n=" << n << " threads=" << threads;
    }
  }
}

TEST(GemmPacked, ParallelPackingHandlesTransposedViews) {
  const Matrix b = random(129, 257, 4242);
  PackedB serial;
  serial.pack(b, /*transpose=*/true);
  util::ThreadPool pool(4);
  PackedB parallel;
  parallel.pack_view_parallel(detail::MatView::transposed(b), pool);
  const std::size_t k = b.cols(), n = b.rows();
  ASSERT_EQ(parallel.rows(), k);
  ASSERT_EQ(parallel.cols(), n);
  const std::size_t padded_n = (n + detail::kNR - 1) / detail::kNR * detail::kNR;
  EXPECT_EQ(std::memcmp(parallel.panel(0), serial.panel(0), k * padded_n * sizeof(float)), 0);
}

TEST(GemmKernelSelection, ParseRoundTrip) {
  EXPECT_EQ(parse_gemm_kernel("packed"), GemmKernel::Packed);
  EXPECT_EQ(parse_gemm_kernel("Blocked"), GemmKernel::Blocked);
  EXPECT_EQ(parse_gemm_kernel("NAIVE"), GemmKernel::Naive);
  EXPECT_THROW(parse_gemm_kernel("simd"), std::invalid_argument);
  EXPECT_STREQ(to_string(GemmKernel::Packed), "packed");
  EXPECT_STREQ(to_string(GemmKernel::Blocked), "blocked");
  EXPECT_STREQ(to_string(GemmKernel::Naive), "naive");
}

TEST(GemmKernelSelection, SetterSwitchesBackend) {
  const GemmKernel before = active_gemm_kernel();
  set_gemm_kernel(GemmKernel::Naive);
  EXPECT_EQ(active_gemm_kernel(), GemmKernel::Naive);
  set_gemm_kernel(GemmKernel::Blocked);
  EXPECT_EQ(active_gemm_kernel(), GemmKernel::Blocked);
  set_gemm_kernel(before);
  EXPECT_EQ(active_gemm_kernel(), before);
}

TEST(GemmKernelSelection, AllBackendsAgreeOnOneProduct) {
  const Matrix a = random(23, 45, 3);
  const Matrix b = random(45, 17, 5);
  Matrix expected(23, 17);
  gemm_naive(a, b, expected);
  for (const GemmKernel kernel :
       {GemmKernel::Packed, GemmKernel::Blocked, GemmKernel::Naive}) {
    KernelGuard guard(kernel);
    Matrix actual(23, 17);
    gemm_blocked(a, b, actual);
    EXPECT_TRUE(actual.approx_equal(expected, 1e-3f)) << to_string(kernel);
  }
}

// The dimension-error contract shared by every entry point: same exception
// type, "<op>: inner dimensions differ (x vs y)" / "<op>: output shape
// mismatch (...)" message style.
TEST(GemmErrors, ConsistentMessagesAcrossEntryPoints) {
  Matrix c(2, 2);
  const auto message_of = [](const std::function<void()>& fn) {
    try {
      fn();
    } catch (const std::invalid_argument& error) {
      return std::string(error.what());
    }
    return std::string("<no exception>");
  };

  const Matrix a(2, 3), b(4, 2);
  EXPECT_EQ(message_of([&] { gemm_naive(a, b, c); }),
            "gemm: inner dimensions differ (3 vs 4)");
  EXPECT_EQ(message_of([&] { gemm_blocked(a, b, c); }),
            "gemm: inner dimensions differ (3 vs 4)");
  // gemm_at inner dim is the row count of both operands.
  const Matrix at_a(3, 2), at_b(4, 2);
  EXPECT_EQ(message_of([&] { gemm_at(at_a, at_b, c); }),
            "gemm_at: inner dimensions differ (3 vs 4)");
  // gemm_bt inner dim is the column count of both operands.
  const Matrix bt_a(2, 3), bt_b(2, 4);
  EXPECT_EQ(message_of([&] { gemm_bt(bt_a, bt_b, c); }),
            "gemm_bt: inner dimensions differ (3 vs 4)");

  const Matrix ok_a(2, 3), ok_b(3, 2);
  Matrix bad(3, 3);
  EXPECT_EQ(message_of([&] { gemm_naive(ok_a, ok_b, bad); }),
            "gemm: output shape mismatch (3x3 vs expected 2x2)");
  EXPECT_EQ(message_of([&] { gemm_at(at_a, Matrix(3, 2), bad); }),
            "gemm_at: output shape mismatch (3x3 vs expected 2x2)");
  EXPECT_EQ(message_of([&] { gemm_bt(bt_a, Matrix(4, 3), bad); }),
            "gemm_bt: output shape mismatch (3x3 vs expected 2x4)");
}

TEST(GemmErrors, TransposedVariantsThrowSameTypeUnderEveryKernel) {
  const Matrix a(2, 3), b(4, 2);
  Matrix c(3, 2);
  for (const GemmKernel kernel :
       {GemmKernel::Packed, GemmKernel::Blocked, GemmKernel::Naive}) {
    KernelGuard guard(kernel);
    EXPECT_THROW(gemm_at(a, b, c), std::invalid_argument) << to_string(kernel);
    EXPECT_THROW(gemm_bt(a, b, c), std::invalid_argument) << to_string(kernel);
  }
}

}  // namespace
}  // namespace ecad::linalg
