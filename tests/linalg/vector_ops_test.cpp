#include "linalg/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ecad::linalg {
namespace {

TEST(VectorOps, AddSubInPlace) {
  std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{10.0f, 20.0f, 30.0f};
  add_inplace(a, b);
  EXPECT_EQ(a, (std::vector<float>{11.0f, 22.0f, 33.0f}));
  sub_inplace(a, b);
  EXPECT_EQ(a, (std::vector<float>{1.0f, 2.0f, 3.0f}));
}

TEST(VectorOps, ScaleAndAxpy) {
  std::vector<float> a{1.0f, -2.0f};
  scale_inplace(a, 3.0f);
  EXPECT_EQ(a, (std::vector<float>{3.0f, -6.0f}));
  const std::vector<float> x{1.0f, 1.0f};
  axpy(a, 2.0f, x);
  EXPECT_EQ(a, (std::vector<float>{5.0f, -4.0f}));
}

TEST(VectorOps, Hadamard) {
  std::vector<float> a{2.0f, 3.0f};
  const std::vector<float> b{4.0f, -1.0f};
  mul_inplace(a, b);
  EXPECT_EQ(a, (std::vector<float>{8.0f, -3.0f}));
}

TEST(VectorOps, DotAndNorm) {
  const std::vector<float> a{3.0f, 4.0f};
  EXPECT_FLOAT_EQ(dot(a, a), 25.0f);
  EXPECT_FLOAT_EQ(norm2(a), 5.0f);
}

TEST(VectorOps, SumAndMax) {
  const std::vector<float> a{1.0f, -5.0f, 4.0f};
  EXPECT_FLOAT_EQ(sum(a), 0.0f);
  EXPECT_FLOAT_EQ(max_value(a), 4.0f);
}

TEST(VectorOps, ArgmaxFirstOccurrence) {
  const std::vector<float> a{1.0f, 7.0f, 7.0f, 2.0f};
  EXPECT_EQ(argmax(a), 1u);
  const std::vector<float> single{3.0f};
  EXPECT_EQ(argmax(single), 0u);
}

TEST(VectorOps, SquaredDistance) {
  const std::vector<float> a{0.0f, 0.0f};
  const std::vector<float> b{3.0f, 4.0f};
  EXPECT_FLOAT_EQ(squared_distance(a, b), 25.0f);
  EXPECT_FLOAT_EQ(squared_distance(a, a), 0.0f);
}

}  // namespace
}  // namespace ecad::linalg
