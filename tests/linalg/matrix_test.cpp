#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace ecad::linalg {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ConstructWithFill) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(m.at(r, c), 1.5f);
  }
}

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1.0f, 2.0f}, {3.0f, 4.0f}};
  EXPECT_FLOAT_EQ(m(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 4.0f);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0f, 2.0f}, {3.0f}}), std::invalid_argument);
}

TEST(Matrix, RowSpanViewsUnderlyingData) {
  Matrix m{{1.0f, 2.0f}, {3.0f, 4.0f}};
  auto row = m.row(1);
  ASSERT_EQ(row.size(), 2u);
  row[0] = 9.0f;
  EXPECT_FLOAT_EQ(m(1, 0), 9.0f);
}

TEST(Matrix, FillOverwrites) {
  Matrix m(2, 2, 1.0f);
  m.fill(0.0f);
  for (float v : m.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Matrix, ReshapeDiscardZeroes) {
  Matrix m(1, 1, 5.0f);
  m.reshape_discard(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (float v : m.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Matrix, TransposedSwapsIndices) {
  Matrix m{{1.0f, 2.0f, 3.0f}, {4.0f, 5.0f, 6.0f}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(t(c, r), m(r, c));
  }
}

TEST(Matrix, DoubleTransposeIsIdentity) {
  util::Rng rng(4);
  const Matrix m = Matrix::random_uniform(5, 7, rng);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, ApproxEqualTolerance) {
  Matrix a{{1.0f}};
  Matrix b{{1.0f + 5e-6f}};
  EXPECT_TRUE(a.approx_equal(b, 1e-5f));
  EXPECT_FALSE(a.approx_equal(b, 1e-7f));
  EXPECT_FALSE(a.approx_equal(Matrix(1, 2)));
}

TEST(Matrix, RandomUniformWithinBounds) {
  util::Rng rng(8);
  const Matrix m = Matrix::random_uniform(10, 10, rng, -0.5f, 0.5f);
  for (float v : m.data()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
}

TEST(Matrix, RandomGaussianRoughMoments) {
  util::Rng rng(8);
  const Matrix m = Matrix::random_gaussian(100, 100, rng, 2.0f, 0.5f);
  double sum = 0.0;
  for (float v : m.data()) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(m.size()), 2.0, 0.05);
}

TEST(Matrix, IdentityDiagonal) {
  const Matrix eye = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(eye(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

}  // namespace
}  // namespace ecad::linalg
