// Table IV: "Best Pareto Frontier Results for Searching Accuracy and
// Throughput" — two frontier points per dataset, Stratix 10 (4x DDR) vs
// Titan X.
//
// Shapes to reproduce: the FPGA achieves higher outputs/s than the GPU for
// the majority of datasets, and sacrificing a little accuracy buys large
// FPGA throughput gains (credit-g row 2 in the paper jumps to 1.40E7).
#include <cstdio>
#include <iostream>

#include "bench_util.h"

namespace {

using namespace ecad;

struct FrontierPoint {
  double accuracy = 0.0;
  double outputs_per_second = 0.0;
};

// Joint accuracy+throughput search against one worker; returns the top-
// accuracy frontier point and the best-throughput point within 1.5 points
// of accuracy (Table IV's row-pair presentation).
std::pair<FrontierPoint, FrontierPoint> search_frontier(const core::Worker& worker,
                                                        data::Benchmark benchmark,
                                                        bool search_hardware, std::size_t evals,
                                                        std::uint64_t seed) {
  core::Master master;
  const auto request = benchtool::make_request(benchmark, search_hardware,
                                               "accuracy_x_throughput", evals, seed);
  const auto outcome = master.search(worker, request);
  const evo::Candidate& top = core::best_by_accuracy(outcome.history);
  const evo::Candidate& fast = core::best_throughput_within(outcome.history, 0.015);
  return {{top.result.accuracy, top.result.outputs_per_second},
          {fast.result.accuracy, fast.result.outputs_per_second}};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecad;
  util::set_log_level(util::LogLevel::Warn);
  const bool quick = benchtool::quick_mode(argc, argv);

  util::TextTable table({"Dataset", "Accuracy", "S10 (output/s)", "TX (output/s)",
                         "paper S10", "paper TX"});

  // Paper Table IV rows for the side-by-side columns.
  struct PaperRow { double s10, tx; };
  const std::map<std::string, std::pair<PaperRow, PaperRow>> paper = {
      {"mnist", {{7.97e5, 7.73e5}, {2.45e6, 1.97e6}}},
      {"fashion-mnist", {{4.8e5, 8.1e5}, {1.92e6, 2.3e6}}},
      {"har", {{1.16e6, 9.59e5}, {4.74e6, 2.46e6}}},
      {"credit-g", {{8.19e3, 1.59e6}, {1.40e7, 1.23e6}}},
      {"bioresponse", {{4.64e5, 1.34e6}, {1.36e6, 1.66e6}}},
      {"phishing", {{6.81e6, 2.27e6}, {1.16e7, 2.27e6}}},
  };

  for (data::Benchmark benchmark : data::all_benchmarks()) {
    const auto& info = data::benchmark_info(benchmark);
    const auto budget = benchtool::dataset_budget(benchmark);
    std::printf("== %s ==\n", info.name.c_str());
    const std::size_t evals = quick ? 12 : (budget.search_epochs >= 25 ? 24 : 16);

    const data::TrainTestSplit split =
        data::load_benchmark_split(benchmark, budget.sample_scale, 47);
    const nn::TrainOptions train = benchtool::train_options(budget.search_epochs);

    const core::FpgaHardwareDatabaseWorker fpga_worker(split, train, 61, hw::stratix10_2800(4),
                                                       /*batch=*/256);
    const core::GpuSimulationWorker gpu_worker(split, train, 61, hw::titan_x(), /*batch=*/512);

    const auto [fpga_top, fpga_fast] =
        search_frontier(fpga_worker, benchmark, /*search_hardware=*/true, evals, 23);
    const auto [gpu_top, gpu_fast] =
        search_frontier(gpu_worker, benchmark, /*search_hardware=*/false, evals, 23);

    const auto& rows = paper.at(info.name);
    table.add_row({info.name, benchtool::fmt_acc(std::max(fpga_top.accuracy, gpu_top.accuracy)),
                   benchtool::fmt_sci(fpga_top.outputs_per_second),
                   benchtool::fmt_sci(gpu_top.outputs_per_second),
                   benchtool::fmt_sci(rows.first.s10), benchtool::fmt_sci(rows.first.tx)});
    table.add_row({info.name,
                   benchtool::fmt_acc(std::min(fpga_fast.accuracy, gpu_fast.accuracy)),
                   benchtool::fmt_sci(fpga_fast.outputs_per_second),
                   benchtool::fmt_sci(gpu_fast.outputs_per_second),
                   benchtool::fmt_sci(rows.second.s10), benchtool::fmt_sci(rows.second.tx)});
  }

  std::printf("\n");
  table.print(std::cout,
              "TABLE IV: Best Pareto Frontier Results, Accuracy + Throughput "
              "(row 1: top accuracy, row 2: best throughput within 1.5 acc points)");
  benchtool::emit_table_json(table, "table4_pareto",
                             "Best Pareto Frontier Results, Accuracy + Throughput");
  return 0;
}
