// Figure 4: "Hardware efficiency results for a Stratix 10 2800 and Titan X
// searching over the MNIST dataset" — plus the §IV power/Fmax statistics.
//
// Shapes to reproduce:
//  * At near-identical top-accuracy throughput (paper: 796,611 vs 773,162
//    outputs/s), the FPGA uses ~41.5% of its allocated logic while the GPU
//    uses ~0.3% of the device.
//  * Arria 10 physical sweep: power min/avg/max ~ 22.5 / 27 / 31.9 W,
//    average achieved Fmax ~ 250 MHz.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "hwmodel/resource_model.h"

int main(int argc, char** argv) {
  using namespace ecad;
  util::set_log_level(util::LogLevel::Warn);
  const bool quick = benchtool::quick_mode(argc, argv);
  const std::size_t evals = quick ? 12 : 20;

  const auto budget = benchtool::dataset_budget(data::Benchmark::Mnist);
  const data::TrainTestSplit split =
      data::load_benchmark_split(data::Benchmark::Mnist, budget.sample_scale, 91);
  const nn::TrainOptions train = benchtool::train_options(budget.search_epochs);

  core::Master master;

  std::printf("searching mnist on Stratix 10 2800 (4x DDR)...\n");
  const core::FpgaHardwareDatabaseWorker fpga(split, train, 81, hw::stratix10_2800(4), 256);
  const auto fpga_outcome = master.search(
      fpga, benchtool::make_request(data::Benchmark::Mnist, true, "accuracy_x_throughput",
                                    evals, 19));
  core::write_history(fpga_outcome.history, "fig4_s10_mnist.csv");

  std::printf("searching mnist on Titan X...\n");
  const core::GpuSimulationWorker gpu(split, train, 81, hw::titan_x(), 512);
  const auto gpu_outcome = master.search(
      gpu, benchtool::make_request(data::Benchmark::Mnist, false, "accuracy_x_throughput",
                                   evals, 19));
  core::write_history(gpu_outcome.history, "fig4_titanx_mnist.csv");

  const evo::Candidate& fpga_top = core::best_by_accuracy(fpga_outcome.history);
  const evo::Candidate& gpu_top = core::best_by_accuracy(gpu_outcome.history);

  util::TextTable table({"Device", "Top Acc", "Outputs/s", "Efficiency", "paper eff"});
  table.add_row({"Stratix 10 2800", benchtool::fmt_acc(fpga_top.result.accuracy),
                 benchtool::fmt_sci(fpga_top.result.outputs_per_second),
                 util::format_fixed(fpga_top.result.hw_efficiency, 4), "0.415"});
  table.add_row({"Titan X", benchtool::fmt_acc(gpu_top.result.accuracy),
                 benchtool::fmt_sci(gpu_top.result.outputs_per_second),
                 util::format_fixed(gpu_top.result.hw_efficiency, 4), "0.003"});
  std::printf("\n");
  table.print(std::cout, "FIGURE 4: hardware efficiency at top accuracy, S10 vs Titan X");
  benchtool::emit_table_json(table, "fig4_efficiency_scaling",
                             "hardware efficiency at top accuracy, S10 vs Titan X");

  // Efficiency statistics over the whole searched population.
  auto eff_stats = [](const std::vector<evo::Candidate>& history) {
    double lo = 1.0, hi = 0.0, sum = 0.0;
    std::size_t n = 0;
    for (const auto& candidate : history) {
      if (!candidate.result.feasible || candidate.result.hw_efficiency <= 0.0) continue;
      lo = std::min(lo, candidate.result.hw_efficiency);
      hi = std::max(hi, candidate.result.hw_efficiency);
      sum += candidate.result.hw_efficiency;
      ++n;
    }
    return std::tuple<double, double, double>(lo, n ? sum / static_cast<double>(n) : 0.0, hi);
  };
  const auto [flo, favg, fhi] = eff_stats(fpga_outcome.history);
  const auto [glo, gavg, ghi] = eff_stats(gpu_outcome.history);
  std::printf("\nefficiency across searched candidates:\n");
  std::printf("  S10     min/avg/max = %.4f / %.4f / %.4f\n", flo, favg, fhi);
  std::printf("  Titan X min/avg/max = %.4f / %.4f / %.4f\n", glo, gavg, ghi);

  // §IV physical statistics for Arria 10 compiles (no training involved).
  const hw::FpgaDevice a10 = hw::arria10_gx1150(1);
  const auto grids = hw::enumerate_grids(hw::GridBounds{}, a10);
  double pmin = 1e9, pmax = 0.0, psum = 0.0, fsum = 0.0;
  std::size_t n = 0;
  for (const auto& grid : grids) {
    const auto physical = hw::estimate_physical(grid, a10);
    if (!physical.fits) continue;
    pmin = std::min(pmin, physical.power_watts);
    pmax = std::max(pmax, physical.power_watts);
    psum += physical.power_watts;
    fsum += physical.fmax_mhz;
    ++n;
  }
  std::printf("\nArria 10 physical sweep over %zu feasible grids:\n", n);
  std::printf("  power  min/avg/max = %.1f / %.1f / %.1f W   (paper: 22.5 / 27 / 31.9 W)\n",
              pmin, psum / static_cast<double>(n), pmax);
  std::printf("  fmax   avg = %.0f MHz                        (paper: ~250 MHz)\n",
              fsum / static_cast<double>(n));
  return 0;
}
