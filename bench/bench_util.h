// Shared helpers for the table/figure regeneration benches.
//
// Every bench accepts `--quick` (or env ECAD_BENCH_QUICK=1) to shrink search
// budgets ~4x for smoke runs; default budgets are sized so the full suite
// finishes on a laptop in tens of minutes while preserving the paper's
// qualitative shapes.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.h"
#include "core/master.h"
#include "core/report.h"
#include "core/worker.h"
#include "data/benchmarks.h"
#include "util/bench_json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"

namespace ecad::benchtool {

/// Writes a BenchReport to BENCH_<name>.json (see util/bench_json.h for the
/// schema and ECAD_BENCH_JSON_DIR) and logs the path. Failures warn instead
/// of aborting so a read-only working directory never kills a bench run.
inline void emit_report(const util::BenchReport& report) {
  try {
    const std::string path = report.write_file();
    std::printf("wrote %s\n", path.c_str());
  } catch (const std::exception& error) {
    util::Log(util::LogLevel::Warn, "bench") << "JSON report not written: " << error.what();
  }
}

/// Emits a rendered TextTable as BENCH_<name>.json (one entry per row).
inline void emit_table_json(const util::TextTable& table, const std::string& bench,
                            const std::string& title) {
  emit_report(util::table_to_report(bench, title, table));
}

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  const char* env = std::getenv("ECAD_BENCH_QUICK");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

/// Per-benchmark evaluation cost control: heavier datasets get fewer epochs
/// and subsampled surrogates so search budgets stay tractable.
struct DatasetBudget {
  double sample_scale = 1.0;
  std::size_t search_epochs = 25;  // epochs per candidate during search
  std::size_t final_epochs = 40;   // epochs for the winner's final training
};

inline DatasetBudget dataset_budget(data::Benchmark benchmark) {
  switch (benchmark) {
    case data::Benchmark::CreditG: return {1.0, 30, 50};
    case data::Benchmark::Phishing: return {1.0, 15, 30};
    case data::Benchmark::Har: return {1.0, 10, 20};
    case data::Benchmark::Bioresponse: return {0.6, 10, 25};
    case data::Benchmark::Mnist: return {0.35, 8, 18};
    case data::Benchmark::FashionMnist: return {0.35, 8, 18};
  }
  return {};
}

inline nn::TrainOptions train_options(std::size_t epochs) {
  nn::TrainOptions options;
  options.epochs = epochs;
  options.early_stop_patience = 0;  // search-time training is short + fixed
  return options;
}

/// Search space matched to the dataset scale: wide datasets cap hidden width
/// so a single candidate evaluation stays sub-10s.
inline evo::SearchSpace search_space(data::Benchmark benchmark, bool search_hardware) {
  evo::SearchSpace space;
  space.search_hardware = search_hardware;
  switch (benchmark) {
    case data::Benchmark::CreditG:
      space.width_choices = {4, 8, 16, 32, 64, 128, 256, 512};
      break;
    case data::Benchmark::Phishing:
      space.width_choices = {4, 8, 16, 32, 64, 128, 256};
      break;
    case data::Benchmark::Har:
      space.width_choices = {8, 16, 32, 64, 128, 256};
      break;
    case data::Benchmark::Bioresponse:
    case data::Benchmark::Mnist:
    case data::Benchmark::FashionMnist:
      space.width_choices = {8, 16, 32, 64, 128, 256};
      space.max_hidden_layers = 3;
      break;
  }
  return space;
}

inline core::SearchRequest make_request(data::Benchmark benchmark, bool search_hardware,
                                        const std::string& fitness, std::size_t evaluations,
                                        std::uint64_t seed) {
  core::SearchRequest request;
  request.space = search_space(benchmark, search_hardware);
  request.evolution.population_size = 10;
  request.evolution.max_evaluations = evaluations;
  request.fitness = fitness;
  request.seed = seed;
  return request;
}

inline std::string fmt_acc(double accuracy) { return util::format_fixed(accuracy, 4); }
inline std::string fmt_sci(double value) { return util::format_scientific(value, 3); }

}  // namespace ecad::benchtool
