// Ablation: batch wire modes vs per-eval latency, plus the paper's batch
// size vs throughput/latency shapes.
//
// Part 1 (ISSUE 5 tentpole): v2 single-response batches vs v3 per-item
// streaming on a heterogeneous workload.  Every shard carries one injected
// slow genome; under v2 the whole shard's results wait for it, under v3 the
// shard-mates stream back the moment they finish.  The JSON
// (BENCH_batch_latency.json) reports p50/p99 per-eval latency for both
// modes — the p99 is where the synchronization barrier lives.
//
// Part 2 (paper §III-D): "Architectures such as GPU typically batch with a
// larger M dimension to fill up compute cores... Our design for FPGA does
// not need to increase batching... This results in a lower batch and lower
// latency accelerator."  The hw-model table verifies the FPGA reaches its
// throughput knee at small batch with a large latency advantage.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "hwmodel/fpga_model.h"
#include "hwmodel/gpu_model.h"
#include "net/socket.h"
#include "net/wire.h"
#include "net/worker_server.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace ecad;

// Deterministic heterogeneous worker: the one genome whose first hidden
// width equals `slow_width` is the straggler (sleeps `slow_ms`), everything
// else sleeps `fast_ms`.  A rare straggler is the tail-latency scenario the
// streaming protocol exists for: under v2 it holds its 7 shard-mates'
// results hostage (8/N of the population goes slow), under v3 only its own
// slot pays.  Sleep-based, so the contrast survives a single-core runner.
class HeterogeneousWorker final : public core::Worker {
 public:
  HeterogeneousWorker(std::size_t slow_width, int fast_ms, int slow_ms)
      : slow_width_(slow_width), fast_ms_(fast_ms), slow_ms_(slow_ms) {}

  std::string name() const override { return "heterogeneous"; }

  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    const std::size_t width = genome.nna.hidden.empty() ? 1 : genome.nna.hidden[0];
    const bool slow = width == slow_width_;
    std::this_thread::sleep_for(std::chrono::milliseconds(slow ? slow_ms_ : fast_ms_));
    evo::EvalResult result;
    result.accuracy = 0.5 + 0.0001 * static_cast<double>(width);
    return result;
  }

 private:
  std::size_t slow_width_;
  int fast_ms_;
  int slow_ms_;
};

void send_frame(net::Socket& socket, net::MsgType type,
                const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = net::encode_frame(type, payload);
  socket.send_all(frame.data(), frame.size());
}

net::Frame recv_frame(net::Socket& socket, int timeout_ms = 60000) {
  std::uint8_t header[net::kFrameHeaderBytes];
  socket.recv_exact(header, sizeof(header), timeout_ms);
  const net::FrameHeader decoded = net::decode_frame_header(header);
  net::Frame frame;
  frame.type = decoded.type;
  frame.payload.resize(decoded.payload_size);
  if (decoded.payload_size > 0) {
    socket.recv_exact(frame.payload.data(), frame.payload.size(), timeout_ms);
  }
  return frame;
}

/// Connect + handshake at `max_version`; the server answers with the
/// negotiated version, which decides whether batches stream.
net::Socket connect_at(const net::Endpoint& endpoint, std::uint16_t max_version) {
  net::Socket socket = net::Socket::connect(endpoint, 5000);
  net::WireWriter hello;
  net::write_hello_payload(hello, "bench-client", max_version);
  send_frame(socket, net::MsgType::Hello, hello.bytes());
  const net::Frame ack = recv_frame(socket);
  if (ack.type != net::MsgType::HelloAck) {
    throw net::NetError("bench: handshake failed");
  }
  return socket;
}

struct ModeResult {
  std::vector<double> latencies_s;  // one per evaluated item
  double wall_s = 0.0;
};

/// Ship `genomes` in fixed shards over one connection; per-item latency is
/// measured from the shard's dispatch to the moment that item's result is
/// usable on the master side — the single response frame under v2, the
/// item's own streamed frame under v3.
ModeResult run_mode(const net::Endpoint& endpoint, std::uint16_t max_version,
                    const std::vector<evo::Genome>& genomes, std::size_t shard_size) {
  net::Socket socket = connect_at(endpoint, max_version);
  ModeResult mode;
  mode.latencies_s.reserve(genomes.size());
  util::Stopwatch wall;
  std::uint64_t next_batch_id = 1;
  for (std::size_t begin = 0; begin < genomes.size(); begin += shard_size) {
    const std::size_t count = std::min(shard_size, genomes.size() - begin);
    net::EvalBatchRequest request;
    request.batch_id = next_batch_id++;
    request.genomes.assign(genomes.begin() + static_cast<std::ptrdiff_t>(begin),
                           genomes.begin() + static_cast<std::ptrdiff_t>(begin + count));
    net::WireWriter writer;
    net::write_eval_batch_request(writer, request);
    util::Stopwatch shard_watch;
    send_frame(socket, net::MsgType::EvalBatchRequest, writer.bytes());

    if (max_version >= 3) {
      std::size_t settled = 0;
      while (settled < count) {
        const net::Frame frame = recv_frame(socket);
        if (frame.type != net::MsgType::EvalItemResult) {
          throw net::NetError("bench: expected EvalItemResult");
        }
        net::WireReader reader(frame.payload);
        (void)net::read_eval_item_result(reader);
        mode.latencies_s.push_back(shard_watch.elapsed_seconds());
        ++settled;
      }
      const net::Frame done = recv_frame(socket);
      if (done.type != net::MsgType::EvalBatchDone) {
        throw net::NetError("bench: expected EvalBatchDone");
      }
    } else {
      const net::Frame frame = recv_frame(socket);
      if (frame.type != net::MsgType::EvalBatchResponse) {
        throw net::NetError("bench: expected EvalBatchResponse");
      }
      const double elapsed = shard_watch.elapsed_seconds();
      // Every item in the shard becomes usable only when the collected
      // response lands: the whole shard inherits its slowest member.
      for (std::size_t k = 0; k < count; ++k) mode.latencies_s.push_back(elapsed);
    }
  }
  mode.wall_s = wall.elapsed_seconds();
  return mode;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecad;
  const bool quick = benchtool::quick_mode(argc, argv);

  // --- Part 1: v2 batch vs v3 streaming on a heterogeneous workload. ---
  // One straggler in the whole workload (<2% of items): the v2 barrier
  // inflates a full shard (8/N of the population) to straggler latency,
  // while v3 confines the cost to the straggler's own slot — exactly the
  // p99 contrast the streaming protocol was built for.
  const std::size_t num_items = quick ? 96 : 128;
  const std::size_t shard_size = 8;
  const std::size_t slow_width = num_items / 2;  // exactly one genome matches
  const int fast_ms = quick ? 1 : 2;
  const int slow_ms = quick ? 25 : 60;

  const HeterogeneousWorker worker(slow_width, fast_ms, slow_ms);
  net::WorkerServerOptions server_options;
  server_options.threads = shard_size;  // a whole shard evaluates concurrently
  net::WorkerServer server(worker, server_options);
  server.start();
  const net::Endpoint endpoint{"127.0.0.1", server.port()};

  // Widths 1..N: the single genome with width == slow_width is the straggler.
  std::vector<evo::Genome> genomes(num_items);
  for (std::size_t i = 0; i < num_items; ++i) genomes[i].nna.hidden = {i + 1};

  // v2 first, then v3, on fresh connections — the daemon decides per
  // connection, so both modes exercise the identical server and workload.
  const ModeResult v2 = run_mode(endpoint, 2, genomes, shard_size);
  const ModeResult v3 = run_mode(endpoint, 3, genomes, shard_size);
  server.stop();

  util::TextTable wire_table(
      {"Mode", "Items", "p50 (ms)", "p99 (ms)", "Mean (ms)", "Wall (s)"});
  const auto add_mode = [&wire_table](const char* name, const ModeResult& mode) {
    wire_table.add_row({name, std::to_string(mode.latencies_s.size()),
                        util::format_fixed(percentile(mode.latencies_s, 0.5) * 1e3, 2),
                        util::format_fixed(percentile(mode.latencies_s, 0.99) * 1e3, 2),
                        util::format_fixed(mean(mode.latencies_s) * 1e3, 2),
                        util::format_fixed(mode.wall_s, 3)});
  };
  add_mode("v2 batch", v2);
  add_mode("v3 streaming", v3);
  wire_table.print(std::cout, "ABLATION: per-eval latency, v2 batch vs v3 streaming "
                              "(one straggler, shards of " +
                                  std::to_string(shard_size) + ")");

  const double v2_p99 = percentile(v2.latencies_s, 0.99);
  const double v3_p99 = percentile(v3.latencies_s, 0.99);
  util::BenchReport report("batch_latency");
  report.set_metadata("title", "per-eval latency: v2 batch vs v3 streaming");
  report.set_metadata("workload", std::to_string(num_items) + " items, shard " +
                                      std::to_string(shard_size) + ", one straggler (" +
                                      std::to_string(fast_ms) + "ms fast / " +
                                      std::to_string(slow_ms) + "ms slow)");
  report.set_metadata("quick", quick ? "1" : "0");
  report.add_entry("v2_batch")
      .label("mode", "v2 single-response batches")
      .metric("items", static_cast<double>(v2.latencies_s.size()))
      .metric("p50_ms", percentile(v2.latencies_s, 0.5) * 1e3)
      .metric("p99_ms", v2_p99 * 1e3)
      .metric("mean_ms", mean(v2.latencies_s) * 1e3)
      .metric("wall_s", v2.wall_s);
  report.add_entry("v3_streaming")
      .label("mode", "v3 per-item result frames")
      .metric("items", static_cast<double>(v3.latencies_s.size()))
      .metric("p50_ms", percentile(v3.latencies_s, 0.5) * 1e3)
      .metric("p99_ms", v3_p99 * 1e3)
      .metric("mean_ms", mean(v3.latencies_s) * 1e3)
      .metric("wall_s", v3.wall_s)
      .metric("p99_speedup_vs_v2", v3_p99 > 0.0 ? v2_p99 / v3_p99 : 0.0)
      .metric("p50_speedup_vs_v2",
              percentile(v3.latencies_s, 0.5) > 0.0
                  ? percentile(v2.latencies_s, 0.5) / percentile(v3.latencies_s, 0.5)
                  : 0.0);
  benchtool::emit_report(report);

  std::printf("\nshape check (ISSUE 5): streaming p99 must beat batch p99 on the "
              "injected workload — %s (%.2fx)\n",
              v3_p99 < v2_p99 ? "OK" : "FAIL", v3_p99 > 0.0 ? v2_p99 / v3_p99 : 0.0);

  // --- Part 2: the paper's batch-size shapes (hw models, unchanged). ---
  nn::MlpSpec spec;  // har-like network
  spec.input_dim = 561;
  spec.output_dim = 6;
  spec.hidden = {128, 64};

  const hw::FpgaDevice fpga_device = hw::arria10_gx1150(4);
  const hw::GridConfig grid{16, 8, 8, 4, 4};
  const hw::GpuDevice gpu_device = hw::titan_x();

  util::TextTable table({"Batch", "FPGA outputs/s", "FPGA latency (us)", "GPU outputs/s",
                         "GPU latency (us)", "FPGA/GPU latency"});

  for (std::size_t batch : {1, 8, 32, 64, 128, 256, 512, 1024, 4096}) {
    const auto fpga = hw::evaluate_fpga(spec, batch, grid, fpga_device);
    const auto gpu = hw::evaluate_gpu(spec, batch, gpu_device);
    table.add_row({std::to_string(batch), util::format_scientific(fpga.outputs_per_second),
                   util::format_fixed(fpga.latency_seconds * 1e6, 1),
                   util::format_scientific(gpu.outputs_per_second),
                   util::format_fixed(gpu.latency_seconds * 1e6, 1),
                   util::format_fixed(fpga.latency_seconds / gpu.latency_seconds, 3)});
  }

  table.print(std::cout, "ABLATION: batch size vs throughput/latency (har-like MLP)");
  benchtool::emit_table_json(table, "ablation_batch_latency",
                             "batch size vs throughput/latency (har-like MLP)");
  std::printf("\npaper shape check (III-D): the FPGA hits its throughput knee at a much\n"
              "smaller batch than the GPU and holds a large latency advantage.\n");
  return v3_p99 < v2_p99 ? 0 : 1;
}
