// Ablation: batch size vs throughput and latency, FPGA vs GPU.
//
// Paper §III-D: "Architectures such as GPU typically batch with a larger M
// dimension to fill up compute cores and obtain higher throughput. Our
// design for FPGA does not need to increase batching because the PEs can be
// arranged in a manner that exploits parallelism in other dimensions. This
// results in a lower batch and lower latency accelerator."
//
// Shapes to verify: GPU throughput keeps climbing with batch; the FPGA
// reaches its knee at small batch, and at iso-throughput the FPGA latency is
// far lower.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "hwmodel/fpga_model.h"
#include "hwmodel/gpu_model.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int, char**) {
  using namespace ecad;

  nn::MlpSpec spec;  // har-like network
  spec.input_dim = 561;
  spec.output_dim = 6;
  spec.hidden = {128, 64};

  const hw::FpgaDevice fpga_device = hw::arria10_gx1150(4);
  const hw::GridConfig grid{16, 8, 8, 4, 4};
  const hw::GpuDevice gpu_device = hw::titan_x();

  util::TextTable table({"Batch", "FPGA outputs/s", "FPGA latency (us)", "GPU outputs/s",
                         "GPU latency (us)", "FPGA/GPU latency"});

  for (std::size_t batch : {1, 8, 32, 64, 128, 256, 512, 1024, 4096}) {
    const auto fpga = hw::evaluate_fpga(spec, batch, grid, fpga_device);
    const auto gpu = hw::evaluate_gpu(spec, batch, gpu_device);
    table.add_row({std::to_string(batch), util::format_scientific(fpga.outputs_per_second),
                   util::format_fixed(fpga.latency_seconds * 1e6, 1),
                   util::format_scientific(gpu.outputs_per_second),
                   util::format_fixed(gpu.latency_seconds * 1e6, 1),
                   util::format_fixed(fpga.latency_seconds / gpu.latency_seconds, 3)});
  }

  table.print(std::cout, "ABLATION: batch size vs throughput/latency (har-like MLP)");
  benchtool::emit_table_json(table, "ablation_batch_latency",
                             "batch size vs throughput/latency (har-like MLP)");
  std::printf("\npaper shape check (III-D): the FPGA hits its throughput knee at a much\n"
              "smaller batch than the GPU and holds a large latency advantage.\n");
  return 0;
}
