// Figure 2: "Performance of FPGA and GPU at different levels of accuracy for
// the har dataset" — (a) Arria 10, (b) Quadro M5000.
//
// Shapes to reproduce:
//  * FPGA throughput spans an order of magnitude across iso-accuracy
//    candidates (each point is a different hardware configuration);
//    stepping down ~0.1% accuracy from the top can buy ~10x throughput.
//  * GPU throughput is comparatively flat: "For GPU, there is roughly no
//    relationship between the number of neurons and the throughput."
//
// Emits the full (accuracy, outputs/s) scatter per device to CSV for
// replotting, plus a summary of the top-accuracy band.
#include <cstdio>
#include <iostream>

#include "bench_util.h"

namespace {

using namespace ecad;

struct Scatter {
  std::vector<evo::Candidate> history;
  double top_accuracy = 0.0;
};

Scatter run(const core::Worker& worker, bool search_hardware, std::size_t evals) {
  core::Master master;
  const auto request = benchtool::make_request(data::Benchmark::Har, search_hardware,
                                               "accuracy_x_throughput", evals, 77);
  auto outcome = master.search(worker, request);
  Scatter scatter{std::move(outcome.history), 0.0};
  for (const auto& candidate : scatter.history) {
    scatter.top_accuracy = std::max(scatter.top_accuracy, candidate.result.accuracy);
  }
  return scatter;
}

// Throughput spread among candidates within `band` accuracy of the top.
void summarize(const char* device, const Scatter& scatter, double band,
               util::BenchReport& report) {
  double lo = 0.0, hi = 0.0;
  for (const auto& candidate : scatter.history) {
    if (!candidate.result.feasible) continue;
    if (candidate.result.accuracy + band < scatter.top_accuracy) continue;
    const double t = candidate.result.outputs_per_second;
    if (lo == 0.0 || t < lo) lo = t;
    hi = std::max(hi, t);
  }
  std::printf("  %-12s top acc %.4f | iso-accuracy throughput %s .. %s (spread %.1fx)\n",
              device, scatter.top_accuracy, benchtool::fmt_sci(lo).c_str(),
              benchtool::fmt_sci(hi).c_str(), lo > 0 ? hi / lo : 0.0);
  report.add_entry(device)
      .label("device", device)
      .metric("top_accuracy", scatter.top_accuracy)
      .metric("iso_accuracy_throughput_lo", lo)
      .metric("iso_accuracy_throughput_hi", hi)
      .metric("iso_accuracy_spread", lo > 0 ? hi / lo : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecad;
  util::set_log_level(util::LogLevel::Warn);
  const bool quick = benchtool::quick_mode(argc, argv);
  const std::size_t evals = quick ? 14 : 32;

  const auto budget = benchtool::dataset_budget(data::Benchmark::Har);
  const data::TrainTestSplit split =
      data::load_benchmark_split(data::Benchmark::Har, budget.sample_scale, 55);
  const nn::TrainOptions train = benchtool::train_options(budget.search_epochs);

  util::BenchReport report("fig2_accuracy_vs_throughput");
  report.set_metadata("title", "iso-accuracy throughput spread, FPGA vs GPU (har)");

  std::printf("Fig. 2a — Arria 10 (1x DDR), joint NNA+HW search on har\n");
  const core::FpgaHardwareDatabaseWorker fpga(split, train, 71, hw::arria10_gx1150(1), 256);
  const Scatter fpga_scatter = run(fpga, /*search_hardware=*/true, evals);
  summarize("Arria 10", fpga_scatter, 0.01, report);
  core::write_history(fpga_scatter.history, "fig2a_arria10_har.csv");

  std::printf("Fig. 2b — Quadro M5000, NNA search on har (fixed hardware)\n");
  const core::GpuSimulationWorker gpu(split, train, 71, hw::quadro_m5000(), 512);
  const Scatter gpu_scatter = run(gpu, /*search_hardware=*/false, evals);
  summarize("M5000", gpu_scatter, 0.01, report);
  core::write_history(gpu_scatter.history, "fig2b_m5000_har.csv");
  benchtool::emit_report(report);

  // The paper's headline: FPGA iso-accuracy spread >> GPU spread.
  std::printf("\nscatter CSVs written: fig2a_arria10_har.csv, fig2b_m5000_har.csv\n");
  std::printf("paper shape check: FPGA spread should be ~an order of magnitude;\n"
              "GPU spread should be small (fixed architecture).\n");
  return 0;
}
