// Ablation: evolutionary search vs random search vs hill climbing on the
// same co-design evaluation budget.
//
// Paper §II: "Some recent results indicate that evolutionary algorithms
// offer better results than random search and reinforcement learning [4]."
// This bench checks that claim inside our reproduction: the steady-state EA
// should match or beat the baselines on joint accuracy+throughput fitness.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "evo/strategies.h"

int main(int argc, char** argv) {
  using namespace ecad;
  util::set_log_level(util::LogLevel::Warn);
  const bool quick = benchtool::quick_mode(argc, argv);
  const std::size_t budget = quick ? 16 : 40;

  const auto bm = data::Benchmark::CreditG;
  const auto dataset_budget = benchtool::dataset_budget(bm);
  const data::TrainTestSplit split = data::load_benchmark_split(bm, 1.0, 61);
  const nn::TrainOptions train = benchtool::train_options(dataset_budget.search_epochs);
  const core::FpgaHardwareDatabaseWorker worker(split, train, 67, hw::arria10_gx1150(1), 256);

  const evo::SearchSpace space = benchtool::search_space(bm, /*search_hardware=*/true);
  const evo::FitnessRegistry registry = evo::FitnessRegistry::with_builtins();
  const auto& fitness = registry.get("accuracy_x_throughput");
  const auto evaluator = [&worker](const evo::Genome& genome) { return worker.evaluate(genome); };

  util::TextTable table({"Strategy", "Models", "Best fitness", "Best acc", "Best outputs/s",
                         "Wall (s)"});
  auto report = [&table](const char* name, const evo::EvolutionResult& result) {
    table.add_row({name, std::to_string(result.stats.models_evaluated),
                   util::format_fixed(result.best.fitness, 4),
                   benchtool::fmt_acc(result.best.result.accuracy),
                   benchtool::fmt_sci(result.best.result.outputs_per_second),
                   util::format_fixed(result.stats.wall_seconds, 1)});
  };

  {
    std::printf("running steady-state EA (budget %zu)...\n", budget);
    core::Master master;
    core::SearchRequest request;
    request.space = space;
    request.evolution.population_size = 10;
    request.evolution.max_evaluations = budget;
    request.fitness = "accuracy_x_throughput";
    request.seed = 71;
    request.threads = 1;
    report("steady-state EA", master.search(worker, request));
  }
  {
    std::printf("running random search (budget %zu)...\n", budget);
    util::Rng rng(71);
    util::ThreadPool pool(1);
    report("random search", evo::random_search(space, budget, evaluator, fitness, rng, pool));
  }
  {
    std::printf("running hill climbing (budget %zu)...\n", budget);
    util::Rng rng(71);
    util::ThreadPool pool(1);
    evo::HillClimbConfig config;
    config.max_evaluations = budget;
    report("hill climbing", evo::hill_climb(space, config, evaluator, fitness, rng, pool));
  }

  std::printf("\n");
  table.print(std::cout, "ABLATION: search strategy comparison on credit-g co-design");
  benchtool::emit_table_json(table, "ablation_search_strategies",
                             "search strategy comparison on credit-g co-design");
  std::printf("\npaper shape check: the EA should match or beat random search at equal\n"
              "budget (paper cites Real et al. [4] for EA > RS in NAS).\n");
  return 0;
}
