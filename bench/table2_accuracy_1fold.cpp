// Table II: "Top 1-fold Accuracy (Acc)" for MNIST and Fashion-MNIST —
// pre-split train/test protocol (the Keras convention the paper follows).
//
// Shape to reproduce: the ECAD MLP beats the best *published MLP* on both
// sets, and on fashion-mnist lands just below the SVC record holder.
#include <cstdio>
#include <iostream>
#include <memory>

#include "baselines/knn.h"
#include "baselines/linear_svc.h"
#include "baselines/logistic_regression.h"
#include "bench_util.h"
#include "nn/evaluate.h"

int main(int argc, char** argv) {
  using namespace ecad;
  util::set_log_level(util::LogLevel::Warn);
  const bool quick = benchtool::quick_mode(argc, argv);

  util::TextTable table({"Dataset", "Top Acc (Any)", "Top Method", "Top Acc (MLP)", "ECAD MLP",
                         "paper Any", "paper MLP", "paper ECAD"});

  for (data::Benchmark benchmark : {data::Benchmark::Mnist, data::Benchmark::FashionMnist}) {
    const auto& info = data::benchmark_info(benchmark);
    const auto budget = benchtool::dataset_budget(benchmark);
    std::printf("== %s ==\n", info.name.c_str());

    // ECAD accuracy search on the (subsampled) surrogate.
    const data::TrainTestSplit search_split =
        data::load_benchmark_split(benchmark, budget.sample_scale, 21);
    core::AccuracyWorker worker(search_split, benchtool::train_options(budget.search_epochs), 7);
    core::Master master;
    const auto request = benchtool::make_request(benchmark, /*search_hardware=*/false,
                                                 "accuracy", quick ? 12 : 28, 9);
    const auto outcome = master.search(worker, request);
    const evo::Candidate& winner = core::best_by_accuracy(outcome.history);
    std::printf("  search: %zu models, winner %s (scaled-set acc %.4f)\n",
                outcome.stats.models_evaluated, winner.genome.key().c_str(),
                winner.result.accuracy);

    // Final 1-fold protocol at full surrogate size.
    const data::TrainTestSplit split = data::load_benchmark_split(benchmark, 1.0, 21);
    util::Rng rng(3);
    const nn::MlpSpec winning_spec =
        winner.genome.nna.to_mlp_spec(split.train.num_features(), split.train.num_classes);
    const double ecad_acc = nn::holdout_evaluate(winning_spec, split,
                                                 benchtool::train_options(budget.final_epochs),
                                                 rng);

    // Fixed default MLP + classical baselines, same protocol.
    nn::MlpSpec default_spec = winning_spec;
    default_spec.hidden = {100};
    default_spec.activation = nn::Activation::ReLU;
    default_spec.use_bias = true;
    const double mlp_default = nn::holdout_evaluate(
        default_spec, split, benchtool::train_options(budget.final_epochs), rng);

    double top_baseline = 0.0;
    std::string top_name = "-";
    using Ptr = std::unique_ptr<baselines::Classifier>;
    std::vector<Ptr> suite;
    suite.push_back(std::make_unique<baselines::LinearSvc>());
    suite.push_back(std::make_unique<baselines::LogisticRegression>());
    suite.push_back(std::make_unique<baselines::Knn>());
    for (auto& classifier : suite) {
      util::Rng brng(5);
      const double accuracy = baselines::holdout_accuracy(*classifier, split, brng);
      std::printf("    baseline %-20s acc %.4f\n", classifier->name().c_str(), accuracy);
      if (accuracy > top_baseline) {
        top_baseline = accuracy;
        top_name = classifier->name();
      }
    }

    const double top_any = std::max({top_baseline, mlp_default, ecad_acc});
    const std::string top_method = ecad_acc >= top_baseline ? "ECAD MLP (ours)" : top_name;
    table.add_row({info.name, benchtool::fmt_acc(top_any), top_method,
                   benchtool::fmt_acc(mlp_default), benchtool::fmt_acc(ecad_acc),
                   benchtool::fmt_acc(info.paper.top_acc_any),
                   benchtool::fmt_acc(info.paper.top_acc_mlp),
                   benchtool::fmt_acc(info.paper.ecad_mlp)});
  }

  std::printf("\n");
  table.print(std::cout, "TABLE II: Top 1-fold Accuracy (measured vs paper)");
  benchtool::emit_table_json(table, "table2_accuracy_1fold",
                             "Top 1-fold Accuracy (measured vs paper)");
  return 0;
}
