// Table I: "Top 10-fold Accuracy (Acc) for All Datasets Compared to Previous
// Works" — credit-g, har, phishing, bioresponse.
//
// Protocol: an ECAD accuracy search picks the best NNA on a holdout split,
// then the winner and every baseline classifier are scored with the OpenML
// 10-fold stratified protocol.  The "paper" columns are the published
// numbers for side-by-side comparison; the paper's qualitative claims to
// check are (a) ECAD-MLP > default MLP everywhere and (b) ECAD-MLP beats
// *all* published methods on credit-g and phishing.
#include <cstdio>
#include <iostream>
#include <memory>

#include "baselines/decision_tree.h"
#include "baselines/knn.h"
#include "baselines/linear_svc.h"
#include "baselines/logistic_regression.h"
#include "baselines/naive_bayes.h"
#include "baselines/random_forest.h"
#include "bench_util.h"
#include "nn/evaluate.h"

namespace {

using namespace ecad;

// The fixed "sklearn MLPClassifier default"-style baseline: one hidden layer
// of 100 ReLU units, adam, no architecture search.
double default_mlp_10fold(const data::Dataset& pool, std::size_t epochs, util::Rng& rng) {
  nn::MlpSpec spec;
  spec.input_dim = pool.num_features();
  spec.output_dim = pool.num_classes;
  spec.hidden = {100};
  return nn::kfold_evaluate(spec, pool, 10, benchtool::train_options(epochs), rng).mean_accuracy;
}

struct BaselineScore {
  std::string name;
  double accuracy = 0.0;
};

// Best classical baseline over the suite the paper's tables reference.
BaselineScore best_baseline_10fold(const data::Dataset& pool, util::Rng& rng) {
  using Factory = std::function<std::unique_ptr<baselines::Classifier>()>;
  const std::vector<std::pair<std::string, Factory>> suite = {
      {"DecisionTree",
       [&pool] {
         baselines::DecisionTreeOptions options;
         options.max_depth = 12;
         // Wide datasets (bioresponse: 1776 features) subsample split
         // candidates to keep the 10-fold sweep tractable on one core.
         if (pool.num_features() > 400) {
           options.max_features = static_cast<std::size_t>(
               std::sqrt(static_cast<double>(pool.num_features()))) * 4;
         }
         return std::make_unique<baselines::DecisionTree>(options);
       }},
      {"RandomForest(ranger)",
       [] {
         baselines::RandomForestOptions options;
         options.num_trees = 25;
         options.tree.max_depth = 12;
         return std::make_unique<baselines::RandomForest>(options);
       }},
      {"SVC(linear)", [] { return std::make_unique<baselines::LinearSvc>(); }},
      {"LogisticRegression", [] { return std::make_unique<baselines::LogisticRegression>(); }},
      {"GaussianNB", [] { return std::make_unique<baselines::GaussianNaiveBayes>(); }},
      {"kNN", [] { return std::make_unique<baselines::Knn>(); }},
  };
  BaselineScore best;
  for (const auto& [name, factory] : suite) {
    const double accuracy = baselines::kfold_accuracy(factory, pool, 10, rng);
    std::printf("    baseline %-22s 10-fold acc %.4f\n", name.c_str(), accuracy);
    if (accuracy > best.accuracy) best = {name, accuracy};
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecad;
  util::set_log_level(util::LogLevel::Warn);
  const bool quick = benchtool::quick_mode(argc, argv);

  util::TextTable table({"Dataset", "Top Acc (Any)", "Top Method", "Top Acc (MLP)", "ECAD MLP",
                         "paper Any", "paper MLP", "paper ECAD"});

  const data::Benchmark datasets[] = {data::Benchmark::CreditG, data::Benchmark::Har,
                                      data::Benchmark::Phishing, data::Benchmark::Bioresponse};
  for (data::Benchmark benchmark : datasets) {
    const auto& info = data::benchmark_info(benchmark);
    const auto budget = benchtool::dataset_budget(benchmark);
    std::printf("== %s ==\n", info.name.c_str());

    // 1. ECAD accuracy search on a holdout split of the surrogate pool.
    const data::TrainTestSplit split =
        data::load_benchmark_split(benchmark, budget.sample_scale, /*seed=*/11);
    core::AccuracyWorker worker(split, benchtool::train_options(budget.search_epochs), 99);
    core::Master master;
    const auto request = benchtool::make_request(benchmark, /*search_hardware=*/false,
                                                 "accuracy", quick ? 12 : 24, 5);
    const auto outcome = master.search(worker, request);
    const evo::Candidate& winner = core::best_by_accuracy(outcome.history);
    std::printf("  search: %zu models, winner %s (holdout acc %.4f)\n",
                outcome.stats.models_evaluated, winner.genome.key().c_str(),
                winner.result.accuracy);

    // 2. 10-fold evaluation of the winner (full-size pool, longer training).
    const data::Dataset pool = data::load_benchmark(benchmark, /*sample_scale=*/1.0, 11);
    util::Rng rng(17);
    const nn::MlpSpec winning_spec =
        winner.genome.nna.to_mlp_spec(pool.num_features(), pool.num_classes);
    const auto ecad_kfold = nn::kfold_evaluate(winning_spec, pool, 10,
                                               benchtool::train_options(budget.final_epochs), rng);

    // 3. Baselines under the same protocol.
    const double mlp_default = default_mlp_10fold(pool, budget.final_epochs, rng);
    const BaselineScore top = best_baseline_10fold(pool, rng);
    const double top_any = std::max({top.accuracy, mlp_default, ecad_kfold.mean_accuracy});
    const std::string top_method =
        ecad_kfold.mean_accuracy >= top.accuracy ? "ECAD MLP (ours)" : top.name;

    table.add_row({info.name, benchtool::fmt_acc(top_any), top_method,
                   benchtool::fmt_acc(mlp_default), benchtool::fmt_acc(ecad_kfold.mean_accuracy),
                   benchtool::fmt_acc(info.paper.top_acc_any),
                   benchtool::fmt_acc(info.paper.top_acc_mlp),
                   benchtool::fmt_acc(info.paper.ecad_mlp)});
  }

  std::printf("\n");
  table.print(std::cout, "TABLE I: Top 10-fold Accuracy (measured vs paper)");
  benchtool::emit_table_json(table, "table1_accuracy_10fold",
                             "Top 10-fold Accuracy (measured vs paper)");
  std::printf("\nNote: 'Top Acc (MLP)' is the fixed default-MLPClassifier baseline;\n"
              "'Top Acc (Any)' is the best of all methods in this repo.\n");
  return 0;
}
