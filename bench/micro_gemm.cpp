// GEMM microbenchmark — the kernels backing MLP training, the dominant cost
// of every ECAD candidate evaluation (paper Table III).
//
// Self-contained harness (no external benchmark dependency): each kernel ×
// shape is spot-checked against the gemm_naive oracle, timed (best-of-N
// with a minimum total measuring window), printed as a table, and emitted to
// BENCH_micro_gemm.json via util::BenchReport so CI can archive the perf
// trajectory. `--quick` (or ECAD_BENCH_QUICK=1) shrinks shapes and windows.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "linalg/gemm.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace ecad;

linalg::Matrix make(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  return linalg::Matrix::random_uniform(rows, cols, rng);
}

bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  const char* env = std::getenv("ECAD_BENCH_QUICK");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

/// Best single-run seconds: warm up once, then repeat until `min_window`
/// seconds have accumulated (at least 3, at most `max_reps` runs).
double time_best(const std::function<void()>& fn, double min_window, int max_reps = 60) {
  fn();  // warmup
  double best = 1e300;
  double total = 0.0;
  int reps = 0;
  while ((total < min_window || reps < 3) && reps < max_reps) {
    util::Stopwatch sw;
    fn();
    const double t = sw.elapsed_seconds();
    best = std::min(best, t);
    total += t;
    ++reps;
  }
  return best;
}

struct Shape {
  std::size_t m, k, n;
  std::string str() const {
    return std::to_string(m) + "x" + std::to_string(k) + "x" + std::to_string(n);
  }
  double flops() const { return static_cast<double>(linalg::gemm_flops(m, k, n)); }
};

struct Row {
  std::string kernel;
  Shape shape;
  std::size_t threads = 1;
  double seconds = 0.0;
  double gflops = 0.0;
  double vs_naive = 0.0;    // 0 when the naive baseline was not measured
  double vs_blocked = 0.0;  // 0 when the legacy baseline was not measured
};

void verify(const linalg::Matrix& actual, const linalg::Matrix& expected,
            const std::string& what) {
  if (!actual.approx_equal(expected, 1e-2f)) {
    std::fprintf(stderr, "FATAL: %s diverges from the gemm_naive oracle\n", what.c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const double window = quick ? 0.1 : 0.35;

  // The bench pins kernels explicitly; ignore any ambient ECAD_GEMM_KERNEL.
  linalg::set_gemm_kernel(linalg::GemmKernel::Packed);

  std::vector<Shape> squares;
  for (std::size_t n : {64ul, 128ul, 256ul, 512ul, 1024ul}) {
    if (quick && n > 256) continue;
    squares.push_back({n, n, n});
  }
  // MLP-shaped products: batch × features -> batch × neurons.
  std::vector<Shape> mlp_shapes = {{32, 784, 128}, {32, 561, 64}, {32, 1776, 128}};

  std::vector<Row> rows;
  util::ThreadPool pool2(2), pool4(4);

  const auto run_shape = [&](const Shape& s, bool square) {
    const linalg::Matrix a = make(s.m, s.k, 1), b = make(s.k, s.n, 2);
    linalg::Matrix c(s.m, s.n), oracle(s.m, s.n);
    linalg::gemm_naive(a, b, oracle);

    const auto add_row = [&](const std::string& kernel, std::size_t threads, double seconds,
                             double naive_s, double blocked_s) {
      Row row;
      row.kernel = kernel;
      row.shape = s;
      row.threads = threads;
      row.seconds = seconds;
      row.gflops = s.flops() / seconds / 1e9;
      row.vs_naive = naive_s > 0.0 ? naive_s / seconds : 0.0;
      row.vs_blocked = blocked_s > 0.0 ? blocked_s / seconds : 0.0;
      rows.push_back(row);
    };

    const double naive_s = time_best([&] { linalg::gemm_naive(a, b, c); }, window, 12);
    const double blocked_s =
        time_best([&] { linalg::gemm_blocked(a, b, c, false, 64); }, window);
    verify(c, oracle, "gemm_blocked(legacy) " + s.str());
    const double packed_s = time_best([&] { linalg::gemm_blocked(a, b, c); }, window);
    verify(c, oracle, "gemm_packed " + s.str());

    add_row("naive", 1, naive_s, naive_s, blocked_s);
    add_row("blocked_legacy", 1, blocked_s, naive_s, blocked_s);
    add_row("packed", 1, packed_s, naive_s, blocked_s);

    linalg::PackedB packed_b;
    packed_b.pack(b);
    const double prepacked_s =
        time_best([&] { linalg::gemm_prepacked(a, packed_b, c); }, window);
    verify(c, oracle, "gemm_prepacked " + s.str());
    add_row("packed_prepacked", 1, prepacked_s, naive_s, blocked_s);

    if (square && s.m >= 256) {
      const double par2_s =
          time_best([&] { linalg::gemm_parallel(a, b, c, pool2); }, window);
      verify(c, oracle, "gemm_parallel(t2) " + s.str());
      add_row("packed_parallel", 2, par2_s, naive_s, blocked_s);
      const double par4_s =
          time_best([&] { linalg::gemm_parallel(a, b, c, pool4); }, window);
      verify(c, oracle, "gemm_parallel(t4) " + s.str());
      add_row("packed_parallel", 4, par4_s, naive_s, blocked_s);
    }

    if (square) {
      // Transposed products (backprop's dW = aᵀ·δ and δ·Wᵀ): packed strided
      // packing vs the pre-packing reference loops.
      linalg::Matrix ct(s.m, s.n);
      linalg::set_gemm_kernel(linalg::GemmKernel::Blocked);
      const double at_ref_s = time_best([&] { linalg::gemm_at(a, b, ct); }, window);
      const double bt_ref_s = time_best([&] { linalg::gemm_bt(a, b, ct); }, window);
      linalg::set_gemm_kernel(linalg::GemmKernel::Packed);
      const double at_s = time_best([&] { linalg::gemm_at(a, b, ct); }, window);
      const double bt_s = time_best([&] { linalg::gemm_bt(a, b, ct); }, window);
      add_row("at_reference", 1, at_ref_s, 0.0, 0.0);
      add_row("at_packed", 1, at_s, 0.0, at_ref_s);
      add_row("bt_reference", 1, bt_ref_s, 0.0, 0.0);
      add_row("bt_packed", 1, bt_s, 0.0, bt_ref_s);
    }
  };

  for (const Shape& s : squares) run_shape(s, /*square=*/true);
  for (const Shape& s : mlp_shapes) run_shape(s, /*square=*/false);

  // ---- human-readable table -------------------------------------------------
  util::TextTable table({"Kernel", "Shape (m=k=n or mxkxn)", "Threads", "GFLOP/s", "vs naive",
                         "vs blocked"});
  for (const Row& row : rows) {
    table.add_row({row.kernel, row.shape.str(), std::to_string(row.threads),
                   util::format_fixed(row.gflops, 2),
                   row.vs_naive > 0.0 ? util::format_fixed(row.vs_naive, 2) + "x" : "-",
                   row.vs_blocked > 0.0 ? util::format_fixed(row.vs_blocked, 2) + "x" : "-"});
  }
  table.print(std::cout, std::string("micro_gemm: GEMM kernel throughput") +
                             (quick ? " (--quick)" : ""));

  // ---- machine-readable report ---------------------------------------------
  util::BenchReport report("micro_gemm");
  report.set_metadata("quick", quick ? "1" : "0");
  report.set_metadata("hardware_concurrency",
                      std::to_string(std::thread::hardware_concurrency()));
  for (const Row& row : rows) {
    util::BenchEntry& entry =
        report.add_entry(row.kernel + "/" + row.shape.str() + "/t" +
                         std::to_string(row.threads));
    entry.label("kernel", row.kernel)
        .label("shape", row.shape.str())
        .label("threads", std::to_string(row.threads));
    entry.metric("m", static_cast<double>(row.shape.m))
        .metric("k", static_cast<double>(row.shape.k))
        .metric("n", static_cast<double>(row.shape.n))
        .metric("best_seconds", row.seconds)
        .metric("gflops", row.gflops);
    if (row.vs_naive > 0.0) entry.metric("speedup_vs_naive", row.vs_naive);
    if (row.vs_blocked > 0.0) entry.metric("speedup_vs_blocked", row.vs_blocked);
  }
  try {
    const std::string path = report.write_file();
    std::printf("\nwrote %s (%zu entries)\n", path.c_str(), report.num_entries());
  } catch (const std::exception& error) {
    // A read-only working directory shouldn't discard the measurements that
    // were already printed above.
    std::fprintf(stderr, "\nWARNING: JSON report not written: %s\n", error.what());
  }

  // Headline: the acceptance bar for the packed backend is >=3x the legacy
  // blocked kernel at the square training sizes.
  double worst = 1e300;
  for (const Row& row : rows) {
    if (row.kernel == "packed" && row.shape.m >= 256 && row.shape.m == row.shape.n) {
      worst = std::min(worst, row.vs_blocked);
    }
  }
  if (worst < 1e300) {
    std::printf("packed vs legacy blocked (square >=256): worst %.2fx\n", worst);
  }
  return 0;
}
