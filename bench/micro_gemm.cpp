// google-benchmark microbenchmarks for the GEMM kernels backing MLP training
// (the dominant cost of every ECAD candidate evaluation, paper Table III).
#include <benchmark/benchmark.h>

#include "linalg/gemm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace ecad;

linalg::Matrix make(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  return linalg::Matrix::random_uniform(rows, cols, rng);
}

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = make(n, n, 1), b = make(n, n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm_naive(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(linalg::gemm_flops(n, n, n)));
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = make(n, n, 1), b = make(n, n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm_blocked(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(linalg::gemm_flops(n, n, n)));
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = make(n, n, 1), b = make(n, n, 2);
  linalg::Matrix c(n, n);
  util::ThreadPool pool;
  for (auto _ : state) {
    linalg::gemm_parallel(a, b, c, pool);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(linalg::gemm_flops(n, n, n)));
}
BENCHMARK(BM_GemmParallel)->Arg(256)->Arg(512);

// MLP-shaped GEMM (tall-skinny): batch x features -> batch x neurons.
void BM_GemmMlpShape(benchmark::State& state) {
  const std::size_t batch = 32;
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto width = static_cast<std::size_t>(state.range(1));
  const linalg::Matrix a = make(batch, k, 1), b = make(k, width, 2);
  linalg::Matrix c(batch, width);
  for (auto _ : state) {
    linalg::gemm_blocked(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(linalg::gemm_flops(batch, k, width)));
}
BENCHMARK(BM_GemmMlpShape)->Args({784, 128})->Args({561, 64})->Args({1776, 128});

void BM_GemmTransposedA(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = make(n, n, 1), b = make(n, n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm_at(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
}
BENCHMARK(BM_GemmTransposedA)->Arg(128)->Arg(256);

void BM_GemmTransposedB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = make(n, n, 1), b = make(n, n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm_bt(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
}
BENCHMARK(BM_GemmTransposedB)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
