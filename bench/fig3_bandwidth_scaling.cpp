// Figure 3: "Throughput and hardware efficiency for FPGA designs with 1 and
// 4 banks of DDR on the credit-g data set".
//
// Shapes to reproduce (paper §IV-C): "We found mostly a linear scaling going
// from 1 to 4 [banks] ... Higher bandwidth did not produce greater
// efficiency but did result in higher throughput overall."
//
// No training needed: this is a pure hardware-database-worker sweep over
// grid configurations for a representative credit-g network.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "hwmodel/fpga_model.h"

int main(int, char**) {
  using namespace ecad;
  util::set_log_level(util::LogLevel::Warn);

  // Representative credit-g MLP (the kind the accuracy search settles on).
  nn::MlpSpec spec;
  spec.input_dim = 20;
  spec.output_dim = 2;
  spec.hidden = {64, 32};

  util::TextTable table({"Grid", "DSPs", "Banks", "BW (GB/s)", "Outputs/s", "Eff GFLOP/s",
                         "Potential", "Efficiency", "BW-bound"});

  const hw::GridConfig grids[] = {
      {4, 4, 8, 4, 4},      // small
      {8, 8, 8, 4, 4},      // medium
      {16, 8, 8, 2, 2},     // wide, shallow interleave (deeply bandwidth-bound)
      {16, 8, 8, 8, 8},     // large
      {16, 16, 4, 8, 8},    // wide
  };

  struct Point { double outputs; double efficiency; };
  std::map<std::string, std::map<std::size_t, Point>> results;

  for (const auto& grid : grids) {
    for (std::size_t banks : {1, 2, 4}) {
      const hw::FpgaDevice device = hw::arria10_gx1150(banks);
      if (!grid.fits(device)) continue;
      const auto report = hw::evaluate_fpga(spec, /*batch=*/256, grid, device);
      results[grid.to_string()][banks] = {report.outputs_per_second, report.efficiency};
      table.add_row({grid.to_string(), std::to_string(grid.dsp_usage()), std::to_string(banks),
                     util::format_fixed(device.ddr.total_bandwidth_gbs(), 1),
                     benchtool::fmt_sci(report.outputs_per_second),
                     util::format_fixed(report.effective_gflops, 1),
                     util::format_fixed(report.potential_gflops, 1),
                     util::format_fixed(report.efficiency, 3),
                     report.any_bandwidth_bound ? "yes" : "no"});
    }
  }

  table.print(std::cout, "FIGURE 3: credit-g FPGA throughput & efficiency vs DDR banks");
  benchtool::emit_table_json(table, "fig3_bandwidth_scaling",
                             "credit-g FPGA throughput & efficiency vs DDR banks");

  std::printf("\nScaling summary (outputs/s ratio, 4 banks vs 1 bank):\n");
  for (const auto& [grid, points] : results) {
    if (!points.count(1) || !points.count(4)) continue;
    const double scaling = points.at(4).outputs / points.at(1).outputs;
    const double eff_delta = points.at(4).efficiency - points.at(1).efficiency;
    std::printf("  %-18s x%.2f throughput, efficiency delta %+0.3f\n", grid.c_str(), scaling,
                eff_delta);
  }
  std::printf("\npaper shape check: bandwidth-bound grids scale ~linearly 1->4 banks;\n"
              "efficiency stays roughly flat (it is a property of the mapping).\n");
  return 0;
}
