// Table III: "Top Accuracy Run Time Statistics" — number of NNA/HW models
// evaluated, average model evaluation time, total evaluation time.
//
// Absolute counts/times are scaled down ~100x from the paper's multi-hour
// runs; the shapes to reproduce are (a) per-model evaluation cost ordering
// (mnist/fashion >> har/phishing/bioresponse >> credit-g) and (b) the
// dedup cache skipping repeat candidates (the paper's note under Table III).
#include <cstdio>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ecad;
  util::set_log_level(util::LogLevel::Warn);
  const bool quick = benchtool::quick_mode(argc, argv);

  util::TextTable table({"Dataset", "Models", "AVG Eval (s)", "Total Eval (s)", "Dup skipped",
                         "paper Models", "paper AVG (s)", "paper Total (s)"});

  for (data::Benchmark benchmark : data::all_benchmarks()) {
    const auto& info = data::benchmark_info(benchmark);
    const auto budget = benchtool::dataset_budget(benchmark);
    std::printf("== %s ==\n", info.name.c_str());

    const data::TrainTestSplit split =
        data::load_benchmark_split(benchmark, budget.sample_scale, 31);
    core::AccuracyWorker worker(split, benchtool::train_options(budget.search_epochs), 41);
    core::Master master;
    // Cheap datasets get bigger budgets, mirroring the paper (credit-g:
    // 10480 models vs mnist: 553 in a comparable wall-clock window).
    std::size_t evaluations = 0;
    switch (benchmark) {
      case data::Benchmark::CreditG: evaluations = 80; break;
      case data::Benchmark::Phishing:
      case data::Benchmark::Har: evaluations = 24; break;
      case data::Benchmark::Bioresponse: evaluations = 16; break;
      case data::Benchmark::Mnist:
      case data::Benchmark::FashionMnist: evaluations = 12; break;
    }
    if (quick) evaluations = std::max<std::size_t>(10, evaluations / 4);

    const auto request =
        benchtool::make_request(benchmark, /*search_hardware=*/false, "accuracy", evaluations, 13);
    const auto outcome = master.search(worker, request);
    const evo::RunStats& stats = outcome.stats;

    table.add_row({info.name, std::to_string(stats.models_evaluated),
                   util::format_fixed(stats.avg_eval_seconds, 3),
                   util::format_fixed(stats.total_eval_seconds, 1),
                   std::to_string(stats.duplicates_skipped),
                   std::to_string(info.paper.models_evaluated),
                   util::format_fixed(info.paper.avg_eval_seconds, 2),
                   util::format_fixed(info.paper.total_eval_seconds, 1)});
  }

  std::printf("\n");
  table.print(std::cout, "TABLE III: Top Accuracy Run Time Statistics (measured vs paper)");
  benchtool::emit_table_json(table, "table3_runtime_stats",
                             "Top Accuracy Run Time Statistics (measured vs paper)");
  std::printf("\nNote: budgets are ~100x smaller than the paper's runs; compare the\n"
              "per-dataset cost *ratios* (mnist avg / credit-g avg ~ 30x in the paper).\n");
  return 0;
}
