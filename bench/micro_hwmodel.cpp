// google-benchmark microbenchmarks for the analytical workers: the paper's
// hardware-database worker exists precisely because model evaluation is
// orders of magnitude cheaper than synthesis — these benches quantify the
// cost of one candidate assessment.
#include <benchmark/benchmark.h>

#include "evo/cache.h"
#include "evo/genome.h"
#include "hwmodel/fpga_model.h"
#include "hwmodel/gpu_model.h"
#include "hwmodel/resource_model.h"
#include "util/rng.h"

namespace {

using namespace ecad;

nn::MlpSpec mnist_like() {
  nn::MlpSpec spec;
  spec.input_dim = 784;
  spec.output_dim = 10;
  spec.hidden = {256, 128};
  return spec;
}

void BM_FpgaModelEval(benchmark::State& state) {
  const nn::MlpSpec spec = mnist_like();
  const hw::FpgaDevice device = hw::stratix10_2800(4);
  const hw::GridConfig grid{16, 16, 8, 8, 8};
  for (auto _ : state) {
    auto report = hw::evaluate_fpga(spec, 256, grid, device);
    benchmark::DoNotOptimize(report.outputs_per_second);
  }
}
BENCHMARK(BM_FpgaModelEval);

void BM_GpuModelEval(benchmark::State& state) {
  const nn::MlpSpec spec = mnist_like();
  const hw::GpuDevice device = hw::titan_x();
  for (auto _ : state) {
    auto report = hw::evaluate_gpu(spec, 512, device);
    benchmark::DoNotOptimize(report.outputs_per_second);
  }
}
BENCHMARK(BM_GpuModelEval);

void BM_PhysicalModelEval(benchmark::State& state) {
  const hw::FpgaDevice device = hw::arria10_gx1150(1);
  const hw::GridConfig grid{16, 8, 8, 8, 4};
  for (auto _ : state) {
    auto report = hw::estimate_physical(grid, device);
    benchmark::DoNotOptimize(report.power_watts);
  }
}
BENCHMARK(BM_PhysicalModelEval);

void BM_GenomeMutation(benchmark::State& state) {
  evo::SearchSpace space;
  util::Rng rng(5);
  evo::Genome genome = evo::random_genome(space, rng);
  for (auto _ : state) {
    genome = evo::mutate(genome, space, rng);
    benchmark::DoNotOptimize(genome.grid.rows);
  }
}
BENCHMARK(BM_GenomeMutation);

void BM_GenomeKey(benchmark::State& state) {
  evo::SearchSpace space;
  util::Rng rng(5);
  const evo::Genome genome = evo::random_genome(space, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(genome.key());
  }
}
BENCHMARK(BM_GenomeKey);

void BM_CacheLookup(benchmark::State& state) {
  evo::EvalCache cache;
  evo::SearchSpace space;
  util::Rng rng(5);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    const evo::Genome genome = evo::random_genome(space, rng);
    keys.push_back(genome.key());
    cache.store(keys.back(), evo::EvalResult{});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_CacheLookup);

void BM_GridEnumeration(benchmark::State& state) {
  const hw::FpgaDevice device = hw::arria10_gx1150(1);
  for (auto _ : state) {
    auto grids = hw::enumerate_grids(hw::GridBounds{}, device);
    benchmark::DoNotOptimize(grids.size());
  }
}
BENCHMARK(BM_GridEnumeration);

}  // namespace

BENCHMARK_MAIN();
