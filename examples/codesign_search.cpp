// Joint NNA/hardware co-design search — the paper's headline flow.  Evolves
// MLP topology *and* systolic-grid configuration together against the
// Stratix 10 hardware-database worker, then prints the accuracy/throughput
// Pareto frontier (Table IV protocol).
//
// Usage: codesign_search [benchmark-name] [evaluations]
#include <cstdio>

#include "core/master.h"
#include "core/report.h"
#include "core/worker.h"
#include "data/benchmarks.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace ecad;
  util::set_log_level(util::LogLevel::Warn);

  const std::string name = argc > 1 ? argv[1] : "credit-g";
  const std::size_t evaluations = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 40;
  const data::Benchmark benchmark = data::benchmark_from_name(name);

  const data::TrainTestSplit split = data::load_benchmark_split(benchmark);
  nn::TrainOptions train;
  train.epochs = 20;

  const hw::FpgaDevice device = hw::stratix10_2800(/*ddr_banks=*/4);
  const core::FpgaHardwareDatabaseWorker worker(split, train, /*seed=*/77, device,
                                                /*batch=*/256);
  std::printf("co-design search on %s against %s (%.0f GFLOP/s peak, %.1f GB/s)\n",
              name.c_str(), device.name.c_str(), device.peak_gflops(),
              device.ddr.total_bandwidth_gbs());

  core::SearchRequest request;
  request.space.search_hardware = true;
  request.evolution.population_size = 12;
  request.evolution.max_evaluations = evaluations;
  request.fitness = "accuracy_x_throughput";
  request.seed = 7;

  core::Master master;
  const auto outcome = master.search(worker, request);
  std::printf("evaluated %zu candidates in %.1fs\n", outcome.stats.models_evaluated,
              outcome.stats.wall_seconds);

  const auto frontier = core::Master::pareto_candidates(
      outcome.history, {evo::Metric::Accuracy, evo::Metric::Throughput});
  std::printf("\naccuracy/throughput Pareto frontier (%zu points):\n", frontier.size());
  for (const auto& candidate : frontier) {
    std::printf("  acc=%.4f  %10.3g outputs/s  eff=%5.1f%%  %s\n", candidate.result.accuracy,
                candidate.result.outputs_per_second, 100.0 * candidate.result.hw_efficiency,
                candidate.genome.key().c_str());
  }

  core::write_history(outcome.history, "codesign_history.csv");
  std::printf("\nfull history written to codesign_history.csv\n");
  return 0;
}
