// Distributed evaluation demo (paper §III): shard one co-design search
// across two worker daemons and verify the result matches in-process
// evaluation exactly.
//
// Everything runs inside this one process — two WorkerServers on loopback
// ephemeral ports stand in for remote machines — so the demo needs no
// orchestration.  Swap the endpoints for real hosts running `ecad_workerd`
// and nothing else changes.
//
// With wire protocol v3 the Master ships each generation as EvalBatchRequest
// shards pulled from a shared queue and the workers stream one
// EvalItemResult frame per candidate as it completes, so a slow candidate
// never delays its shard-mates' results; a background heartbeat pings
// sidelined endpoints so a restarted daemon rejoins without waiting to be
// probed by an evaluation.
#include <cstdio>

#include "core/master.h"
#include "core/worker.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "net/remote_worker.h"
#include "net/worker_server.h"
#include "util/logging.h"

using namespace ecad;

int main() {
  util::set_log_level(util::LogLevel::Warn);

  // The evaluation machinery lives server-side: dataset + training config.
  data::SyntheticSpec spec;
  spec.num_samples = 400;
  spec.num_features = 12;
  spec.num_classes = 3;
  util::Rng data_rng(7);
  const data::Dataset dataset = data::generate_synthetic(spec, data_rng);
  const data::TrainTestSplit split = data::stratified_split(dataset, 0.25, data_rng);
  nn::TrainOptions train;
  train.epochs = 3;
  const core::AccuracyWorker worker(split, train, /*seed=*/42);

  // Two "remote machines" on loopback.
  net::WorkerServer server_a(worker);
  net::WorkerServer server_b(worker);
  server_a.start();
  server_b.start();
  std::printf("workers listening on 127.0.0.1:%u and 127.0.0.1:%u\n", server_a.port(),
              server_b.port());

  net::RemoteWorkerOptions remote_options;
  remote_options.endpoints = {{"127.0.0.1", server_a.port()}, {"127.0.0.1", server_b.port()}};
  remote_options.fallback = &worker;  // belt and braces: degrade, never fail
  const net::RemoteWorker remote(remote_options);

  core::SearchRequest request;
  request.seed = 3;
  request.evolution.population_size = 6;
  request.evolution.max_evaluations = 18;
  request.evolution.batch_size = 3;
  request.threads = 4;

  core::Master master;
  const evo::EvolutionResult distributed = master.search(remote, request);
  const evo::EvolutionResult local = master.search(worker, request);

  std::printf("distributed: best %s fitness %.6f (%zu models, %zu served remotely in %zu batch frames)\n",
              distributed.best.genome.key().c_str(), distributed.best.fitness,
              distributed.stats.models_evaluated,
              server_a.requests_served() + server_b.requests_served(),
              remote.batches_dispatched());
  std::printf("local:       best %s fitness %.6f (%zu models)\n", local.best.genome.key().c_str(),
              local.best.fitness, local.stats.models_evaluated);
  const bool match = distributed.best.genome == local.best.genome &&
                     distributed.best.fitness == local.best.fitness &&
                     distributed.history.size() == local.history.size();
  std::printf("results %s\n", match ? "MATCH bit-for-bit" : "DIVERGED (bug!)");

  server_a.stop();
  server_b.stop();
  return match ? 0 : 1;
}
