// Quickstart: train one MLP on the credit-g benchmark surrogate, then ask
// the hardware-database model how the same network performs on an Arria 10
// overlay.  This is the smallest end-to-end tour of the ECAD public API.
#include <cstdio>

#include "data/benchmarks.h"
#include "hwmodel/fpga_model.h"
#include "hwmodel/resource_model.h"
#include "nn/evaluate.h"
#include "nn/trainer.h"
#include "util/stopwatch.h"

int main() {
  using namespace ecad;

  // 1. Load a dataset (synthetic surrogate of OpenML credit-g; swap in
  //    data::load_csv("yours.csv") for real data).
  data::TrainTestSplit split = data::load_benchmark_split(data::Benchmark::CreditG);
  std::printf("dataset: %s  train=%zu test=%zu features=%zu classes=%zu\n",
              split.train.name.c_str(), split.train.num_samples(), split.test.num_samples(),
              split.train.num_features(), split.train.num_classes);

  // 2. Describe and train an MLP.
  nn::MlpSpec spec;
  spec.input_dim = split.train.num_features();
  spec.output_dim = split.train.num_classes;
  spec.hidden = {64, 32};
  spec.activation = nn::Activation::ReLU;

  util::Rng rng(42);
  nn::Mlp mlp(spec, rng);
  nn::TrainOptions options;
  options.epochs = 30;

  util::Stopwatch watch;
  nn::TrainResult trained = nn::train(mlp, split.train, &split.test, options, rng);
  const double accuracy = nn::evaluate_accuracy(mlp, split.test);
  std::printf("trained %s in %.2fs (%zu epochs): test accuracy %.4f\n",
              spec.to_string().c_str(), watch.elapsed_seconds(), trained.epochs_run, accuracy);

  // 3. Ask the hardware-database worker how this network maps to an FPGA.
  const hw::FpgaDevice device = hw::arria10_gx1150(/*ddr_banks=*/1);
  const hw::GridConfig grid{.rows = 8, .cols = 8, .vec_width = 8,
                            .interleave_m = 4, .interleave_n = 4};
  const hw::FpgaPerfReport perf = hw::evaluate_fpga(spec, /*batch=*/256, grid, device);
  std::printf("\n%s @ %.0f MHz, grid %s\n", device.name.c_str(), device.clock_mhz,
              grid.to_string().c_str());
  std::printf("  potential: %8.1f GFLOP/s\n", perf.potential_gflops);
  std::printf("  effective: %8.1f GFLOP/s (efficiency %.1f%%)\n", perf.effective_gflops,
              100.0 * perf.efficiency);
  std::printf("  throughput: %.3g outputs/s   latency: %.3g s   bandwidth-bound: %s\n",
              perf.outputs_per_second, perf.latency_seconds,
              perf.any_bandwidth_bound ? "yes" : "no");

  // 4. Physical (synthesis) estimates for the same grid.
  const hw::PhysicalReport physical = hw::estimate_physical(grid, device);
  std::printf("  synthesis: %zu DSP (%.1f%%), %zu M20K (%.1f%%), %zu ALM (%.1f%%), "
              "Fmax %.0f MHz, power %.1f W\n",
              physical.dsp_used, 100.0 * physical.dsp_fraction, physical.m20k_used,
              100.0 * physical.m20k_fraction, physical.alm_used, 100.0 * physical.alm_fraction,
              physical.fmax_mhz, physical.power_watts);
  return 0;
}
