// Hardware design-space explorer: sweep systolic-grid configurations for a
// fixed MLP and report performance + synthesis estimates on Arria 10 and
// Stratix 10 — the hardware-database and physical workers in isolation.
//
// Usage: hardware_explorer [batch]
#include <cstdio>
#include <iostream>

#include "hwmodel/fpga_model.h"
#include "hwmodel/gpu_model.h"
#include "hwmodel/resource_model.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ecad;
  const std::size_t batch = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 256;

  // An MNIST-like MLP.
  nn::MlpSpec spec;
  spec.input_dim = 784;
  spec.output_dim = 10;
  spec.hidden = {256, 128};
  std::printf("network: %s   batch=%zu   %.1f kFLOP/sample\n\n", spec.to_string().c_str(), batch,
              static_cast<double>(spec.flops_per_sample()) / 1e3);

  for (const hw::FpgaDevice& device : {hw::arria10_gx1150(1), hw::stratix10_2800(4)}) {
    util::TextTable table({"Grid", "DSP", "Outputs/s", "Latency (us)", "Eff %", "BW-bound",
                           "Fmax MHz", "Power W", "ALM %"});
    const hw::GridConfig grids[] = {
        {4, 4, 4, 2, 2}, {8, 8, 4, 4, 4},  {8, 8, 8, 4, 4},
        {16, 8, 8, 8, 4}, {16, 16, 4, 8, 8}, {16, 16, 8, 8, 8}, {32, 16, 8, 16, 8},
    };
    for (const auto& grid : grids) {
      if (!grid.fits(device)) continue;
      const auto perf = hw::evaluate_fpga(spec, batch, grid, device);
      const auto physical = hw::estimate_physical(grid, device);
      table.add_row({grid.to_string(), std::to_string(grid.dsp_usage()),
                     util::format_scientific(perf.outputs_per_second),
                     util::format_fixed(perf.latency_seconds * 1e6, 1),
                     util::format_fixed(100.0 * perf.efficiency, 1),
                     perf.any_bandwidth_bound ? "yes" : "no",
                     util::format_fixed(physical.fmax_mhz, 0),
                     util::format_fixed(physical.power_watts, 1),
                     util::format_fixed(100.0 * physical.alm_fraction, 1)});
    }
    table.print(std::cout, device.name + " (" +
                               util::format_fixed(device.ddr.total_bandwidth_gbs(), 1) +
                               " GB/s DDR)");
    std::printf("\n");
  }

  // GPU reference points for the same network.
  util::TextTable gpu_table({"Device", "Outputs/s", "Efficiency %", "Peak TFLOP/s"});
  for (const hw::GpuDevice& device : {hw::quadro_m5000(), hw::titan_x(), hw::radeon_vii()}) {
    const auto perf = hw::evaluate_gpu(spec, 512, device);
    gpu_table.add_row({device.name, util::format_scientific(perf.outputs_per_second),
                       util::format_fixed(100.0 * perf.efficiency, 2),
                       util::format_fixed(device.peak_tflops, 1)});
  }
  gpu_table.print(std::cout, "GPU simulation workers (batch 512)");
  return 0;
}
