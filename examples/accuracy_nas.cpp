// Accuracy-only neural architecture search (the Table I/II protocol): evolve
// MLP topologies for the phishing benchmark and print the hall of fame.
//
// Usage: accuracy_nas [benchmark-name] [evaluations]
#include <cstdio>

#include "core/master.h"
#include "core/report.h"
#include "core/worker.h"
#include "data/benchmarks.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace ecad;
  util::set_log_level(util::LogLevel::Warn);

  const std::string name = argc > 1 ? argv[1] : "phishing";
  const std::size_t evaluations = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30;
  const data::Benchmark benchmark = data::benchmark_from_name(name);

  const data::TrainTestSplit split = data::load_benchmark_split(benchmark);
  std::printf("searching %s: %zu train / %zu test, %zu features, %zu classes\n", name.c_str(),
              split.train.num_samples(), split.test.num_samples(), split.train.num_features(),
              split.train.num_classes);

  nn::TrainOptions train;
  train.epochs = 20;
  const core::AccuracyWorker worker(split, train, /*seed=*/1234);

  core::SearchRequest request;
  request.space.search_hardware = false;  // NNA traits only
  request.evolution.population_size = 10;
  request.evolution.max_evaluations = evaluations;
  request.fitness = "accuracy";
  request.seed = 42;

  core::Master master;
  const auto outcome = master.search(worker, request);

  std::printf("\nevaluated %zu models in %.1fs (avg %.2fs/model, %zu duplicates skipped)\n",
              outcome.stats.models_evaluated, outcome.stats.wall_seconds,
              outcome.stats.avg_eval_seconds, outcome.stats.duplicates_skipped);
  std::printf("\nhall of fame (final population):\n");
  const std::size_t show = std::min<std::size_t>(5, outcome.population.size());
  for (std::size_t i = 0; i < show; ++i) {
    const auto& candidate = outcome.population[i];
    std::printf("  %zu. acc=%.4f params=%-8.0f %s\n", i + 1, candidate.result.accuracy,
                candidate.result.parameters, candidate.genome.key().c_str());
  }
  core::write_history(outcome.history, "accuracy_nas_history.csv");
  std::printf("\nfull history written to accuracy_nas_history.csv\n");
  return 0;
}
