// Config-file driven ECAD run — the paper's §III entry point, where the flow
// is described entirely by a configuration file.  With no argument, runs a
// built-in demo config.
//
// Usage: config_driven [path/to/experiment.ini]
#include <cstdio>

#include "core/experiment.h"
#include "core/report.h"
#include "util/logging.h"

namespace {

constexpr const char* kDemoConfig = R"ini(
# ECAD demo experiment: co-design search on credit-g against Arria 10.
[dataset]
benchmark = credit-g
seed = 3

[nna]
min_layers = 1
max_layers = 3
widths = 8, 16, 32, 64, 128

[hardware]
target = arria10
ddr_banks = 1
batch = 256

[train]
epochs = 20
learning_rate = 0.001

[search]
fitness = accuracy_x_throughput
population = 10
evaluations = 30
seed = 11
)ini";

}  // namespace

int main(int argc, char** argv) {
  using namespace ecad;
  util::set_log_level(util::LogLevel::Warn);

  util::Config config;
  if (argc > 1) {
    std::printf("loading experiment config from %s\n", argv[1]);
    config = util::Config::from_file(argv[1]);
  } else {
    std::printf("no config given; running the built-in credit-g/arria10 demo\n");
    config = util::Config::parse(kDemoConfig);
  }

  const core::ExperimentOutcome outcome = core::run_experiment(config);
  std::printf("worker: %s\n", outcome.worker_name.c_str());
  std::printf("evaluated %zu models in %.1fs (%zu duplicates skipped)\n",
              outcome.result.stats.models_evaluated, outcome.result.stats.wall_seconds,
              outcome.result.stats.duplicates_skipped);

  const auto& best = outcome.result.best;
  std::printf("\nbest candidate: %s\n", best.genome.key().c_str());
  std::printf("  accuracy   %.4f\n", best.result.accuracy);
  if (best.result.outputs_per_second > 0.0) {
    std::printf("  throughput %.3g outputs/s\n", best.result.outputs_per_second);
    std::printf("  efficiency %.1f%%   power %.1f W   fmax %.0f MHz\n",
                100.0 * best.result.hw_efficiency, best.result.power_watts,
                best.result.fmax_mhz);
  }
  core::write_history(outcome.result.history, "config_driven_history.csv");
  std::printf("\nhistory written to config_driven_history.csv\n");
  return 0;
}
